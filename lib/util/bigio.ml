(* Memory-mapped (or read-into) bigstring file access.

   The trace decoders want the whole container addressable as one flat
   byte region so frame walks and payload decodes touch no channel and
   copy no bytes.  [load] maps the file with [Unix.map_file] when it
   can; inputs that cannot be mapped (pipes, some filesystems, or an
   explicit [~mmap:false]) fall back to reading the file chunk-wise
   into a freshly allocated bigstring, which preserves the same
   interface at the cost of one copy. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let empty : t = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

let length (b : t) = Bigarray.Array1.dim b

let get (b : t) i : char = Bigarray.Array1.get b i

let unsafe_get (b : t) i : char = Bigarray.Array1.unsafe_get b i

let read_into_big fd size : t =
  let big = Bigarray.Array1.create Bigarray.char Bigarray.c_layout size in
  let chunk = Bytes.create (min size 65536) in
  let pos = ref 0 in
  let eof = ref false in
  while !pos < size && not !eof do
    let n = Unix.read fd chunk 0 (min (Bytes.length chunk) (size - !pos)) in
    if n = 0 then eof := true
    else begin
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set big (!pos + i) (Bytes.unsafe_get chunk i)
      done;
      pos := !pos + n
    end
  done;
  if !pos < size then failwith "Bigio.load: short read";
  big

let load ?(mmap = true) path : t =
  let fd =
    (* [Sys_error], matching what [open_in_bin] raises on the channel
       decode path, so backends fail identically on a missing file. *)
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size = 0 then empty
      else if mmap then
        match
          Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
        with
        | genarray -> Bigarray.array1_of_genarray genarray
        | exception _ -> read_into_big fd size
      else read_into_big fd size)

let sub_string (b : t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length b then
    invalid_arg "Bigio.sub_string";
  String.init len (fun i -> Bigarray.Array1.unsafe_get b (pos + i))

let to_bytes (b : t) =
  let n = length b in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i (Bigarray.Array1.unsafe_get b i)
  done;
  out
