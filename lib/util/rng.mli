(** Deterministic pseudo-random number generation.

    All randomness in the reproduction flows through this module so that
    every experiment is bit-for-bit repeatable from a seed.  The generator
    is splitmix64 (Steele et al.), which is adequate for workload synthesis
    and has a trivially splittable state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator without disturbing the
    stream of [t] more than one step. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bits64 : t -> int64
(** Next raw 64 bits of the stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first
    success of a Bernoulli(p) process; [p] must be in (0, 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples from a Zipf distribution over ranks
    [0, n) with exponent [s], via inverse-CDF on a precomputation-free
    rejection scheme.  Used to make a few objects account for most heap
    accesses, as in the paper's Figure 1. *)
