type align = Left | Right

type line = Row of string list | Sep

type t = {
  headers : string list;
  ncols : int;
  mutable aligns : align list;
  mutable lines : line list; (* reversed *)
}

let create ~headers =
  let ncols = List.length headers in
  if ncols = 0 then invalid_arg "Tablefmt.create: no headers";
  let aligns = List.mapi (fun i _ -> if i = 0 then Left else Right) headers in
  { headers; ncols; aligns; lines = [] }

let set_aligns t aligns =
  if List.length aligns <> t.ncols then
    invalid_arg "Tablefmt.set_aligns: wrong arity";
  t.aligns <- aligns

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Tablefmt.add_row: too many cells";
  let cells =
    if n = t.ncols then cells
    else cells @ List.init (t.ncols - n) (fun _ -> "")
  in
  t.lines <- Row cells :: t.lines

let add_sep t = t.lines <- Sep :: t.lines

let render t =
  let lines = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Sep -> ()
      | Row cells ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cells)
    lines;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let emit_row cells =
    let aligned =
      List.mapi (fun i c -> pad (List.nth t.aligns i) widths.(i) c) cells
    in
    Buffer.add_string buf ("| " ^ String.concat " | " aligned ^ " |\n")
  in
  let emit_sep () =
    let dashes = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    Buffer.add_string buf ("+" ^ String.concat "+" dashes ^ "+\n")
  in
  emit_sep ();
  emit_row t.headers;
  emit_sep ();
  List.iter (function Sep -> emit_sep () | Row cells -> emit_row cells) lines;
  emit_sep ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_pct x = Printf.sprintf "%+.2f%%" x

let fmt_f ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf
