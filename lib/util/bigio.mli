(** Memory-mapped file access as a flat bigstring.

    Backs the zero-copy trace decode path: the whole container file is
    addressable as one byte region, so frame walks, CRC checks and
    payload decodes read straight from the mapping without channels or
    intermediate copies. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val empty : t

val load : ?mmap:bool -> string -> t
(** [load path] maps the file read-only with [Unix.map_file].  When the
    file cannot be mapped (pipes, exotic filesystems) or [~mmap:false]
    is given, the file is instead read chunk-wise into a freshly
    allocated bigstring — same interface, one extra copy.  Zero-length
    files yield {!empty} (mapping an empty file is an error on Linux).
    Raises [Sys_error] if the file cannot be opened (same exception as
    [open_in]) and [Failure] on a short read in fallback mode. *)

val length : t -> int

val get : t -> int -> char
(** Bounds-checked. *)

val unsafe_get : t -> int -> char

val sub_string : t -> pos:int -> len:int -> string
(** Raises [Invalid_argument] when the slice is out of bounds. *)

val to_bytes : t -> bytes
(** Copy the whole region into fresh [bytes] — used by the lenient
    (corruption-recovery) decode path, which is rare and not worth a
    bigstring twin. *)
