type row = Single of string * float | Pair of string * float * float

type t = {
  width : int;
  unit_label : string;
  title : string;
  mutable rows : row list; (* reversed *)
}

let create ?(width = 48) ?(unit_label = "") ~title () =
  if width < 4 then invalid_arg "Barchart.create: width too small";
  { width; unit_label; title; rows = [] }

let add t ~label v = t.rows <- Single (label, v) :: t.rows

let add_pair t ~label a b = t.rows <- Pair (label, a, b) :: t.rows

let render t =
  let rows = List.rev t.rows in
  let max_abs =
    List.fold_left
      (fun m -> function
        | Single (_, v) -> Float.max m (Float.abs v)
        | Pair (_, a, b) -> Float.max m (Float.max (Float.abs a) (Float.abs b)))
      0. rows
  in
  let label_w =
    List.fold_left
      (fun m -> function
        | Single (l, _) | Pair (l, _, _) -> max m (String.length l + 2))
      0 rows
  in
  let bar v =
    let n =
      if max_abs = 0. then 0
      else int_of_float (Float.round (Float.abs v /. max_abs *. float_of_int t.width))
    in
    let block = String.make n (if v < 0. then '<' else '#') in
    Printf.sprintf "%-*s %+.2f%s" t.width block v t.unit_label
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (t.title ^ "\n");
  List.iter
    (fun r ->
      match r with
      | Single (l, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-*s |%s\n" label_w l (bar v))
      | Pair (l, a, b) ->
        Buffer.add_string buf (Printf.sprintf "  %-*s a|%s\n" label_w l (bar a));
        Buffer.add_string buf
          (Printf.sprintf "  %-*s b|%s\n" label_w "" (bar b)))
    rows;
  Buffer.contents buf
