module Allocator = Prefix_heap.Allocator

type state = Free | Recycled | Full

let state_name = function Free -> "free" | Recycled -> "recycled" | Full -> "full"

type config = {
  block_bytes : int;
  line_bytes : int;
  recycle_free_lines : float;
  max_bytes : int option;
}

let default_config =
  { block_bytes = 32 * 1024; line_bytes = 256; recycle_free_lines = 0.25; max_bytes = None }

type block = {
  b_base : int;
  mutable b_state : state;
  line_objs : int array; (* live objects touching each line *)
  line_bytes_ : int array; (* live bytes charged to each line *)
  mutable b_live_objects : int;
  mutable b_live_bytes : int;
  mutable b_free_lines : int;
  mutable cursor : int; (* next bump offset within the block *)
  mutable limit : int; (* end of the hole being bumped into *)
  mutable scan : int; (* next line to examine for holes this cycle *)
}

type t = {
  heap : Allocator.t;
  cfg : config;
  lines_per_block : int;
  recycle_lines : int; (* free-line threshold for Full -> Recycled *)
  mutable all : block list; (* every block, newest first *)
  mutable current : block option;
  mutable recycled_q : block list;
  mutable free_q : block list;
  objs : (int, int * block) Hashtbl.t; (* addr -> (charged bytes, block) *)
  mutable total_block_bytes : int;
  mutable live_objects : int;
  mutable live_bytes : int;
  mutable peak_bytes_ : int;
  mutable blocks_acquired : int;
  mutable lines_reclaimed_ : int;
  mutable holes_reused_ : int;
}

let align = 16

let round_up n = (n + align - 1) / align * align

let create ?(config = default_config) heap =
  if config.block_bytes <= 0 || config.line_bytes <= 0 then
    invalid_arg "Blockalloc.create: block and line sizes must be positive";
  if config.block_bytes mod config.line_bytes <> 0 then
    invalid_arg "Blockalloc.create: block_bytes must be a multiple of line_bytes";
  if config.line_bytes mod align <> 0 then
    invalid_arg "Blockalloc.create: line_bytes must be 16-byte aligned";
  if config.recycle_free_lines < 0. || config.recycle_free_lines > 1. then
    invalid_arg "Blockalloc.create: recycle_free_lines outside [0, 1]";
  (match config.max_bytes with
  | Some m when m <= 0 -> invalid_arg "Blockalloc.create: max_bytes must be positive"
  | _ -> ());
  let lines_per_block = config.block_bytes / config.line_bytes in
  { heap;
    cfg = config;
    lines_per_block;
    recycle_lines =
      max 1 (int_of_float (ceil (config.recycle_free_lines *. float_of_int lines_per_block)));
    all = [];
    current = None;
    recycled_q = [];
    free_q = [];
    objs = Hashtbl.create 256;
    total_block_bytes = 0;
    live_objects = 0;
    live_bytes = 0;
    peak_bytes_ = 0;
    blocks_acquired = 0;
    lines_reclaimed_ = 0;
    holes_reused_ = 0 }

let fresh_block t =
  let within_cap =
    match t.cfg.max_bytes with
    | Some m -> t.total_block_bytes + t.cfg.block_bytes <= m
    | None -> true
  in
  if not within_cap then None
  else begin
    let base = Allocator.malloc t.heap t.cfg.block_bytes in
    let b =
      { b_base = base;
        b_state = Free;
        line_objs = Array.make t.lines_per_block 0;
        line_bytes_ = Array.make t.lines_per_block 0;
        b_live_objects = 0;
        b_live_bytes = 0;
        b_free_lines = t.lines_per_block;
        cursor = 0;
        limit = t.cfg.block_bytes;
        scan = t.lines_per_block;
        (* a virgin block is one whole hole; nothing left to scan *) }
    in
    t.all <- b :: t.all;
    t.total_block_bytes <- t.total_block_bytes + t.cfg.block_bytes;
    t.blocks_acquired <- t.blocks_acquired + 1;
    Some b
  end

(* Position [b] at its next hole of >= [want] contiguous free bytes
   (whole free lines), advancing the per-cycle scan cursor.  Lines whose
   objects have all been released count as free again — Immix-style
   line-granular reclamation. *)
let advance_hole t b want =
  let lines_needed = (want + t.cfg.line_bytes - 1) / t.cfg.line_bytes in
  let rec find l =
    if l >= t.lines_per_block then false
    else if b.line_objs.(l) <> 0 then find (l + 1)
    else begin
      let r = ref l in
      while !r < t.lines_per_block && b.line_objs.(!r) = 0 && !r - l < lines_needed do
        incr r
      done;
      if !r - l >= lines_needed then begin
        b.cursor <- l * t.cfg.line_bytes;
        (* extend the hole to its full run of free lines *)
        let e = ref !r in
        while !e < t.lines_per_block && b.line_objs.(!e) = 0 do
          incr e
        done;
        b.limit <- !e * t.cfg.line_bytes;
        b.scan <- !e;
        t.holes_reused_ <- t.holes_reused_ + 1;
        true
      end
      else find !r
    end
  in
  find b.scan

(* A block leaving the allocation target position: classify it by what
   its lines say right now, so releases that happened while it was
   current are not lost (a stranded-Full block would otherwise need one
   more release to re-enter circulation). *)
let retire t b =
  if b.b_live_objects = 0 then begin
    b.b_state <- Free;
    b.cursor <- 0;
    b.limit <- t.cfg.block_bytes;
    b.scan <- t.lines_per_block;
    t.free_q <- b :: t.free_q
  end
  else if b.b_free_lines >= t.recycle_lines then begin
    b.b_state <- Recycled;
    t.recycled_q <- t.recycled_q @ [ b ]
  end
  else b.b_state <- Full

(* Take the next allocation target: recycled blocks first (their free
   lines are reclaimed space), then whole free blocks, then a fresh
   block from the heap. *)
let next_block t want =
  let rec from_recycled () =
    match t.recycled_q with
    | b :: rest ->
      t.recycled_q <- rest;
      b.scan <- 0;
      b.cursor <- 0;
      b.limit <- 0;
      if advance_hole t b want then Some b
      else begin
        (* no hole fits this request; park it as Full again *)
        b.b_state <- Full;
        from_recycled ()
      end
    | [] -> (
      match t.free_q with
      | b :: rest ->
        t.free_q <- rest;
        b.cursor <- 0;
        b.limit <- t.cfg.block_bytes;
        b.scan <- t.lines_per_block;
        Some b
      | [] -> fresh_block t)
  in
  from_recycled ()

let count_alloc t b addr want =
  let first = (addr - b.b_base) / t.cfg.line_bytes in
  let last = (addr - b.b_base + want - 1) / t.cfg.line_bytes in
  for l = first to last do
    if b.line_objs.(l) = 0 then b.b_free_lines <- b.b_free_lines - 1;
    b.line_objs.(l) <- b.line_objs.(l) + 1;
    let lo = max (l * t.cfg.line_bytes) (addr - b.b_base) in
    let hi = min ((l + 1) * t.cfg.line_bytes) (addr - b.b_base + want) in
    b.line_bytes_.(l) <- b.line_bytes_.(l) + (hi - lo)
  done;
  b.b_live_objects <- b.b_live_objects + 1;
  b.b_live_bytes <- b.b_live_bytes + want;
  t.live_objects <- t.live_objects + 1;
  t.live_bytes <- t.live_bytes + want;
  if t.live_bytes > t.peak_bytes_ then t.peak_bytes_ <- t.live_bytes;
  Hashtbl.replace t.objs addr (want, b)

let try_alloc t size =
  if size <= 0 then invalid_arg "Blockalloc.alloc: size must be positive";
  let want = round_up size in
  if want > t.cfg.block_bytes then None
  else begin
    let rec place () =
      match t.current with
      | Some b when b.limit - b.cursor >= want ->
        let addr = b.b_base + b.cursor in
        b.cursor <- b.cursor + want;
        count_alloc t b addr want;
        Some addr
      | Some b ->
        if advance_hole t b want then place ()
        else begin
          t.current <- None;
          retire t b;
          place ()
        end
      | None -> (
        match next_block t want with
        | Some b ->
          t.current <- Some b;
          place ()
        | None -> None)
    in
    place ()
  end

let alloc t size =
  match try_alloc t size with
  | Some addr -> addr
  | None ->
    invalid_arg
      (Printf.sprintf "Blockalloc.alloc: exhausted (%d block bytes, cap %d)"
         t.total_block_bytes
         (Option.value ~default:0 t.cfg.max_bytes))

let is_current t b = match t.current with Some c -> c == b | None -> false

let release t addr =
  match Hashtbl.find_opt t.objs addr with
  | None -> invalid_arg (Printf.sprintf "Blockalloc.release: %#x is not live" addr)
  | Some (want, b) ->
    Hashtbl.remove t.objs addr;
    let first = (addr - b.b_base) / t.cfg.line_bytes in
    let last = (addr - b.b_base + want - 1) / t.cfg.line_bytes in
    for l = first to last do
      b.line_objs.(l) <- b.line_objs.(l) - 1;
      let lo = max (l * t.cfg.line_bytes) (addr - b.b_base) in
      let hi = min ((l + 1) * t.cfg.line_bytes) (addr - b.b_base + want) in
      b.line_bytes_.(l) <- b.line_bytes_.(l) - (hi - lo);
      if b.line_objs.(l) = 0 then begin
        b.b_free_lines <- b.b_free_lines + 1;
        t.lines_reclaimed_ <- t.lines_reclaimed_ + 1
      end
    done;
    b.b_live_objects <- b.b_live_objects - 1;
    b.b_live_bytes <- b.b_live_bytes - want;
    t.live_objects <- t.live_objects - 1;
    t.live_bytes <- t.live_bytes - want;
    if not (is_current t b) then begin
      if b.b_live_objects = 0 then begin
        (* whole block free: back to the free queue, rewound *)
        if b.b_state = Recycled then
          t.recycled_q <- List.filter (fun x -> not (x == b)) t.recycled_q;
        b.b_state <- Free;
        b.cursor <- 0;
        b.limit <- t.cfg.block_bytes;
        b.scan <- t.lines_per_block;
        t.free_q <- b :: t.free_q
      end
      else if b.b_state = Full && b.b_free_lines >= t.recycle_lines then begin
        b.b_state <- Recycled;
        t.recycled_q <- t.recycled_q @ [ b ]
      end
    end

let charged_size t addr = Option.map fst (Hashtbl.find_opt t.objs addr)

let contains t addr = Hashtbl.mem t.objs addr

let in_range t addr =
  List.exists (fun b -> addr >= b.b_base && addr < b.b_base + t.cfg.block_bytes) t.all

let live_objects t = t.live_objects
let live_bytes t = t.live_bytes
let peak_bytes t = t.peak_bytes_
let block_bytes_total t = t.total_block_bytes
let blocks_acquired t = t.blocks_acquired
let lines_reclaimed t = t.lines_reclaimed_
let holes_reused t = t.holes_reused_

let block_count t = List.length t.all

let state_counts t =
  let free = ref 0 and recycled = ref 0 and full = ref 0 in
  List.iter
    (fun b ->
      match b.b_state with
      | Free -> incr free
      | Recycled -> incr recycled
      | Full -> incr full)
    t.all;
  (!free, !recycled, !full)

let blocks t = List.map (fun b -> (b.b_base, t.cfg.block_bytes)) t.all

(* Exact per-block accounting, exposed for tests and the campaign's
   footprint leg: (base, state, live objects, live bytes, free lines). *)
let block_stats t =
  List.map
    (fun b -> (b.b_base, b.b_state, b.b_live_objects, b.b_live_bytes, b.b_free_lines))
    t.all

let dispose t =
  List.iter (fun b -> Allocator.free t.heap b.b_base) t.all;
  t.all <- [];
  t.current <- None;
  t.recycled_q <- [];
  t.free_q <- [];
  t.total_block_bytes <- 0;
  Hashtbl.reset t.objs
