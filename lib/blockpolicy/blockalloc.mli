(** Block-structured bump-pointer allocation in the style of
    Immix/Nofl (Wingo, "Nofl: A Precise Immix"): the heap hands out
    fixed-size blocks, each subdivided into lines; objects bump-allocate
    within a block and never move.  A released object decrements the
    live counts of the lines it spans; a line whose count reaches zero
    is reclaimed, and a full block whose free-line density crosses the
    configured threshold re-enters circulation as a {e recycled} block
    whose holes (runs of free lines) are bump-allocated into.

    Accounting is exact per block — live objects, live bytes and free
    lines — on top of the same charge-on-alloc / credit-on-release
    discipline as {!Prefix_runtime.Region} ([live_bytes] and
    [peak_bytes] always reflect rounded charged sizes). *)

type state =
  | Free  (** no live objects; whole block reusable from the start *)
  | Recycled  (** free-line density over threshold; holes reusable *)
  | Full  (** bump cursor exhausted, too few free lines to recycle *)

val state_name : state -> string

type config = {
  block_bytes : int;  (** block size (default 32 KiB) *)
  line_bytes : int;
      (** line granule (default 256 B); must divide [block_bytes] and
          be 16-byte aligned *)
  recycle_free_lines : float;
      (** fraction of a block's lines that must be free before a Full
          block becomes Recycled (default 0.25) *)
  max_bytes : int option;
      (** cap on total block bytes taken from the heap; [None] =
          unbounded *)
}

val default_config : config

type t

val create : ?config:config -> Prefix_heap.Allocator.t -> t
(** Raises [Invalid_argument] on inconsistent geometry. *)

val try_alloc : t -> int -> int option
(** Bump-allocate (16-byte aligned).  [None] when the request exceeds
    [block_bytes] or acquiring a fresh block would exceed [max_bytes] —
    the graceful-degradation path.  Raises on non-positive sizes. *)

val alloc : t -> int -> int
(** Like {!try_alloc} but raises [Invalid_argument] on exhaustion. *)

val release : t -> int -> unit
(** Release a live address, crediting exactly the bytes charged at
    allocation (the address keys the charged size — callers cannot
    desynchronize accounting by passing a stale size).  Raises
    [Invalid_argument] for addresses not currently live. *)

val charged_size : t -> int -> int option
(** Rounded bytes charged for a live address, or [None]. *)

val contains : t -> int -> bool
(** Whether the address is a currently-live block allocation. *)

val in_range : t -> int -> bool
(** Whether the address falls inside any block's byte range (live or
    not) — distinguishes a double free of block space from a foreign
    heap address. *)

val live_objects : t -> int
val live_bytes : t -> int

val peak_bytes : t -> int
(** High-water mark of {!live_bytes}. *)

val block_bytes_total : t -> int
val blocks_acquired : t -> int

val lines_reclaimed : t -> int
(** Cumulative count of line transitions live -> free. *)

val holes_reused : t -> int
(** Number of free-line runs the bump cursor re-entered. *)

val block_count : t -> int

val state_counts : t -> int * int * int
(** (free, recycled, full) block counts; the current allocation target
    is counted under its queue-entry state. *)

val blocks : t -> (int * int) list
(** (base, size) of every block, newest first. *)

val block_stats : t -> (int * state * int * int * int) list
(** Per-block exact accounting: (base, state, live objects, live
    bytes, free lines). *)

val dispose : t -> unit
(** Return every block to the heap. *)
