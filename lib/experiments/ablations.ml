(* Ablation studies beyond the paper's tables, exercising the design
   choices DESIGN.md calls out:

   - LCS vs Sequitur stream mining (§3.1 claims LCS is "as effective"),
   - counter sharing on/off (code-size / counter-count effect),
   - recycling slot-count sweep (the N of Figure 7),
   - Algorithm 1's pairwise-merge-only rule vs unbounded merging. *)

module T = Prefix_util.Tablefmt
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Trace_stats = Prefix_trace.Trace_stats
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Counters = Prefix_core.Counters
module Layout = Prefix_core.Layout

let detector_comparison () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "LCS streams"; "LCS objs"; "Sequitur streams"; "Sequitur objs";
          "object overlap %" ]
  in
  List.iter
    (fun name ->
      let r = Harness.find name in
      let detect m =
        Detector.detect_with_stats ~config:Harness.pipeline_config.detector ~method_:m
          r.profiling_stats r.profiling_trace
      in
      let lcs = detect Detector.Lcs and seqr = detect Detector.Sequitur in
      let objs streams =
        List.concat_map Hds.objs streams |> List.sort_uniq compare
      in
      let ol = objs lcs and os = objs seqr in
      let inter = List.filter (fun o -> List.mem o os) ol in
      let union = List.sort_uniq compare (ol @ os) in
      let overlap =
        if union = [] then 100.
        else 100. *. float_of_int (List.length inter) /. float_of_int (List.length union)
      in
      T.add_row t
        [ name;
          string_of_int (List.length lcs);
          string_of_int (List.length ol);
          string_of_int (List.length seqr);
          string_of_int (List.length os);
          T.fmt_f overlap ])
    [ "mcf"; "perl"; "libc"; "xalanc" ];
  "Ablation: LCS vs Sequitur stream mining (profiling runs)\n" ^ T.render t

let counter_sharing () =
  let t =
    T.create
      ~headers:[ "benchmark"; "counters (shared)"; "counters (unshared)"; "sites" ]
  in
  List.iter
    (fun name ->
      let r = Harness.find name in
      let plan_with sharing =
        Pipeline.plan_with_stats
          ~config:{ Harness.pipeline_config with counter_sharing = sharing }
          ~variant:Plan.HdsHot r.profiling_stats r.profiling_trace
      in
      let shared = plan_with true and unshared = plan_with false in
      T.add_row t
        [ name;
          string_of_int (Plan.num_counters shared);
          string_of_int (Plan.num_counters unshared);
          string_of_int (Plan.num_sites shared) ])
    [ "mysql"; "mcf"; "omnetpp"; "povray"; "roms"; "libc" ];
  "Ablation: counter sharing on/off\n" ^ T.render t

let recycling_sweep () =
  (* Sweep the recycling headroom factor on leela: fewer slots than the
     peak simultaneous liveness forces fallbacks to malloc; more slots
     waste region space for no benefit. *)
  let r = Harness.find "leela" in
  let costs = Harness.exec_config.costs in
  let t =
    T.create ~headers:[ "headroom"; "slots"; "calls avoided"; "time vs baseline %" ]
  in
  List.iter
    (fun headroom ->
      let config =
        { Harness.pipeline_config with
          recycle_config = { Harness.pipeline_config.recycle_config with headroom } }
      in
      let plan =
        Pipeline.plan_with_stats ~config ~variant:Plan.Hot r.profiling_stats
          r.profiling_trace
      in
      let outcome =
        Prefix_runtime.Executor.run_packed ~config:Harness.exec_config
          ~policy:(fun heap ->
            Prefix_runtime.Prefix_policy.policy costs heap plan
              Prefix_runtime.Policy.no_classification)
          (Harness.long_packed r)
      in
      T.add_row t
        [ T.fmt_f headroom;
          string_of_int (List.length plan.slots);
          T.fmt_int outcome.metrics.calls_avoided;
          T.fmt_pct
            (Prefix_runtime.Metrics.time_pct_change ~baseline:r.baseline.metrics
               outcome.metrics) ])
    [ 0.25; 0.5; 1.0; 1.25; 2.0; 4.0 ];
  "Ablation: recycling slot headroom sweep (leela)\n" ^ T.render t

let merge_rule () =
  (* Algorithm 1 merges each reconstituted stream at most once.  Compare
     the resulting layouts on the Figure 2 example when that restriction
     is honoured vs when every overlap merges (simulated by re-running
     reconstitution on its own output until a fixpoint). *)
  let result = Exp_fig2.reconstitute () in
  let once = Layout.placement_order result in
  let rec fixpoint streams n =
    if n = 0 then streams
    else begin
      let r = Layout.reconstitute streams in
      if List.length r.rhds = List.length streams then r.rhds
      else fixpoint r.rhds (n - 1)
    end
  in
  let collapsed = fixpoint result.rhds 4 in
  Printf.sprintf
    "Ablation: Algorithm 1 merge restriction (cc1 example)\n\
     pairwise-merge-only: %d streams, %d objects placed\n\
     merge-to-fixpoint:   %d streams (unbounded merging destroys the\n\
     two-stream adjacency guarantee the paper relies on)\n"
    (List.length result.rhds) (List.length once) (List.length collapsed)

(* §2.2.2's hybrid mechanism on a non-deterministic allocation pattern:
   one site reached through two call paths whose interleaving differs
   between the training and evaluation inputs.  Plain instance ids
   misfire; gating the counter on the hot path's signature restores
   precision. *)
let hybrid_context () =
  let module B = Prefix_workloads.Builder in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let costs = Harness.exec_config.costs in
  let trace ~interleave () =
    let b = B.create ~seed:9 () in
    let hot = ref [] in
    let n_a = ref 0 in
    List.iter
      (fun path ->
        match path with
        | `A ->
          let o = B.alloc b ~site:1 ~ctx:100 32 in
          incr n_a;
          if !n_a <= 3 then hot := o :: !hot else B.access b o 0
        | `B ->
          let o = B.alloc b ~site:1 ~ctx:200 32 in
          B.access b o 0)
      interleave;
    for _ = 1 to 400 do
      List.iter (fun o -> B.access b o 0) (List.rev !hot)
    done;
    B.trace b
  in
  let prof = trace ~interleave:[ `A; `B; `A; `B; `B; `A; `B; `A; `A ] () in
  let long = trace ~interleave:[ `B; `B; `A; `A; `B; `A; `B; `A; `B; `A ] () in
  let stats = Prefix_trace.Trace_stats.analyze long in
  let hot_set = Hashtbl.create 8 in
  List.iter
    (fun (o : Prefix_trace.Trace_stats.obj_info) -> Hashtbl.replace hot_set o.obj ())
    (Prefix_trace.Trace_stats.hot_objects stats);
  let cls = { Policy.is_hot = Hashtbl.mem hot_set; is_hds = (fun _ -> false) } in
  let capture config =
    let plan = Pipeline.plan_with_stats ~config ~variant:Plan.Hot
        (Prefix_trace.Trace_stats.analyze prof) prof in
    let o =
      Executor.run ~config:Harness.exec_config
        ~policy:(fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan cls)
        long
    in
    (o.metrics.region_hot_objects, o.metrics.region_objects)
  in
  let ph, pa = capture Harness.pipeline_config in
  let hh, ha = capture { Harness.pipeline_config with hybrid_context = true } in
  Printf.sprintf
    "Ablation: hybrid context (object ids + calling context, §2.2.2)\n\
     non-deterministic interleaving, 3 hot objects on one of two call paths:\n\
     id-only capture:  %d hot of %d placed (profiled ids land on the wrong path's objects)\n\
     hybrid capture:   %d hot of %d placed (counter gated on the hot path's signature)\n"
    ph pa hh ha

(* Cache-geometry sensitivity: replay ft under the scaled hierarchy used
   by every experiment and under the paper's full-size geometry.  The
   traces are ~10^5 smaller than the paper's runs, so under a 40 MB LLC
   the spread-out hot set still fits and most of the locality win
   disappears — the quantitative justification for the scaled hierarchy
   (DESIGN.md §2). *)
let geometry_sensitivity () =
  let r = Harness.find "ft" in
  let costs = Harness.exec_config.costs in
  let plan = Option.get r.prefix_hot.plan in
  let t = T.create ~headers:[ "hierarchy"; "baseline Mcycles"; "PreFix:Hot delta %" ] in
  List.iter
    (fun (label, hierarchy) ->
      let config = { Harness.exec_config with hierarchy } in
      let base =
        Prefix_runtime.Executor.run_packed ~config
          ~policy:(fun heap -> Prefix_runtime.Policy.baseline costs heap)
          (Harness.long_packed r)
      in
      let opt =
        Prefix_runtime.Executor.run_packed ~config
          ~policy:(fun heap ->
            Prefix_runtime.Prefix_policy.policy costs heap plan
              Prefix_runtime.Policy.no_classification)
          (Harness.long_packed r)
      in
      T.add_row t
        [ label;
          T.fmt_f (base.metrics.cycles.total_cycles /. 1e6);
          T.fmt_pct
            (Prefix_runtime.Metrics.time_pct_change ~baseline:base.metrics opt.metrics) ])
    [ ("scaled (default)", Prefix_cachesim.Hierarchy.scaled_config);
      ("paper geometry", Prefix_cachesim.Hierarchy.paper_config) ];
  "Ablation: cache-geometry sensitivity (ft) — why the hierarchy is scaled\n"
  ^ T.render t

let report () =
  String.concat "\n"
    [ detector_comparison (); counter_sharing (); recycling_sweep (); merge_rule ();
      hybrid_context (); geometry_sensitivity () ]
