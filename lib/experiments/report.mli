(** The experiment registry: one entry per table/figure of the paper's
    evaluation, plus the ablations and the seed-stability check. *)

type experiment = {
  id : string;  (** e.g. ["table3"], ["fig9"] *)
  what : string;  (** one-line description *)
  run : unit -> string;  (** produce the rendered report *)
}

val all : experiment list

val find : string -> experiment option

val run_all : unit -> string
(** Every experiment's report, concatenated (the default bench run). *)
