(** Durable (checkpointed) benchmark runs.

    A durable run produces exactly the {!Harness.result} (and report
    text) an uninterrupted [Harness.run_benchmark] would, while
    persisting its progress to a checkpoint directory at stream segment
    boundaries: kill the process at any point and {!resume} finishes
    the run instead of restarting it, with a byte-identical report.

    Per benchmark the directory holds a [manifest] (run identity:
    bench, scale, seed, streaming mode, segment size, jobs, trace and
    config digests — validated on resume, so a stale or mismatched
    checkpoint directory is refused), rolling [*.ckpt]/[*.ckpt.prev]
    snapshots for the long-run statistics pass and each of the six
    policy replays, and [*.done] results for finished phases.  All
    files are self-validating {!Prefix_runtime.Checkpoint} containers
    written atomically; a torn snapshot falls back to the previous one.

    Stream detection (the [class] phase) has no mid-phase snapshot and
    restarts if interrupted; trace generation, profiling analysis and
    planning are recomputed deterministically on every resume. *)

type t = {
  dir : string;  (** root checkpoint directory (one subdir per bench) *)
  every : int;  (** checkpoint every N stream segments *)
  throttle_ms : float;
      (** minimum wall-clock spacing between periodic saves — bounds
          checkpointing overhead at roughly [save_cost / throttle_ms]
          whatever the segment size (0 to checkpoint at the full
          [every] cadence, as the crash campaign does) *)
  guardrails : Prefix_runtime.Checkpoint.guardrails;
      (** checked at segment boundaries; a breach flushes a final
          checkpoint and raises {!Prefix_runtime.Checkpoint.Breach} *)
  jobs : int;  (** benchmarks replayed in parallel by {!run_many} *)
  scale : Prefix_workloads.Workload.scale;  (** evaluation scale *)
  streaming : bool;  (** bounded-memory evaluation ([--stream]) *)
  segment_events : int option;
}

val default : dir:string -> t
(** jobs 1, checkpoint every 8 segments, no guardrails, Long scale,
    materialized evaluation. *)

val run_benchmark : t -> Prefix_workloads.Workload.t -> Harness.result
(** Run (or finish) one benchmark durably.  Raises [Failure] on a
    checkpoint identity mismatch and [Checkpoint.Breach] on a guardrail
    breach (after flushing a resumable checkpoint). *)

val run_many : t -> string list -> Harness.result list
(** Durable {!Harness.run_many}: independent benchmarks spread across a
    domain pool when [jobs > 1]. *)

val resume :
  dir:string ->
  every:int ->
  guardrails:Prefix_runtime.Checkpoint.guardrails ->
  string list * Harness.result list
(** Finish every benchmark recorded under [dir], reconstructing each
    run's configuration (scale, streaming, segment size, jobs) from its
    manifest.  Returns the benchmark names with their results. *)

val check : dir:string -> (string, string) result
(** Validate every container under [dir] — magic, CRCs, kind, identity
    — without loading any state or replaying anything.  [Ok report]
    when everything is intact, [Error report] otherwise. *)

val render : Harness.result -> string
(** The exact per-policy report text `prefix run` prints: shared by the
    CLI and the crash campaign so reports can be diffed byte-for-byte. *)
