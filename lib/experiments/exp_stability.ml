(* Seed stability: the paper reports times "averaged over 10 runs and
   the variations across the runs are small".  Our runs are
   deterministic given a seed, so the analogous check is robustness of
   the Table 3 deltas to the workload seed: regenerate each benchmark
   with different seeds (fresh object ids, fresh random access orders)
   and report mean ± spread of the best-PreFix delta. *)

module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Trace_stats = Prefix_trace.Trace_stats
module Workload = Prefix_workloads.Workload

let title = "Stability: best-PreFix delta across workload seeds (3 seeds)"

let seeds = [ 7; 1007; 90210 ]

(* A subset keeps the experiment affordable; the benchmarks chosen are
   the most seed-sensitive (random access orders). *)
let benchmarks = [ "mcf"; "ft"; "health"; "leela"; "analyzer" ]

let delta_for name seed =
  let wl = Prefix_workloads.Registry.find name in
  let prof = wl.generate ~scale:Workload.Profiling ~seed () in
  let long = wl.generate ~scale:Workload.Long ~seed:(seed + 1) () in
  let stats = Trace_stats.analyze prof in
  let costs = Harness.exec_config.costs in
  let base = Executor.run ~config:Harness.exec_config
      ~policy:(fun heap -> Policy.baseline costs heap) long in
  let best =
    List.fold_left
      (fun acc variant ->
        let plan =
          Pipeline.plan_with_stats ~config:Harness.pipeline_config ~variant stats prof
        in
        let o =
          Executor.run ~config:Harness.exec_config
            ~policy:(fun heap ->
              Prefix_runtime.Prefix_policy.policy costs heap plan
                Policy.no_classification)
            long
        in
        Float.min acc (M.time_pct_change ~baseline:base.metrics o.metrics))
      infinity
      [ Plan.Hot; Plan.Hds; Plan.HdsHot ]
  in
  best

let report () =
  let t =
    T.create ~headers:[ "benchmark"; "mean best %"; "min"; "max"; "stddev"; "paper best %" ]
  in
  List.iter
    (fun name ->
      let ds = List.map (delta_for name) seeds in
      let p = Paper_data.find_table3 name in
      T.add_row t
        [ name;
          T.fmt_pct (Prefix_util.Stats.mean ds);
          T.fmt_pct (List.fold_left min infinity ds);
          T.fmt_pct (List.fold_left max neg_infinity ds);
          (* The 3 seeds are a sample of all possible seeds, so the
             spread uses the n-1 estimator, not the population one. *)
          T.fmt_f (Prefix_util.Stats.stddev_sample ds);
          T.fmt_pct p.best_pct ])
    benchmarks;
  title ^ "\n" ^ T.render t
