type table3_row = {
  name : string;
  baseline_s : float;
  mem_refs : string;
  hds_pct : float option;
  halo_pct : float option;
  hot_pct : float;
  hds_v_pct : float option;
  hdshot_pct : float option;
  best_pct : float;
}

(* Table 3.  A [None] in hds_v/hdshot means the paper prints one merged
   cell for all PreFix versions (the recycling benchmarks). *)
let table3 =
  [ { name = "mysql"; baseline_s = 152.7; mem_refs = "560 million"; hds_pct = Some 3.9;
      halo_pct = None; hot_pct = -13.7; hds_v_pct = Some (-10.2); hdshot_pct = Some (-5.2);
      best_pct = -13.7 };
    { name = "perl"; baseline_s = 106.0; mem_refs = "337 billion"; hds_pct = Some (-6.3);
      halo_pct = None; hot_pct = -7.6; hds_v_pct = Some (-8.3); hdshot_pct = Some (-7.8);
      best_pct = -8.3 };
    { name = "mcf"; baseline_s = 11.74; mem_refs = "13.3 billion"; hds_pct = Some 0.8;
      halo_pct = Some (-1.2); hot_pct = -4.9; hds_v_pct = Some (-5.1); hdshot_pct = Some (-7.3);
      best_pct = -7.3 };
    { name = "omnetpp"; baseline_s = 434.5; mem_refs = "556 billion"; hds_pct = Some 0.6;
      halo_pct = None; hot_pct = -10.6; hds_v_pct = Some (-13.2); hdshot_pct = Some (-10.2);
      best_pct = -13.2 };
    { name = "xalanc"; baseline_s = 43.38; mem_refs = "138 billion"; hds_pct = Some (-1.2);
      halo_pct = None; hot_pct = -4.0; hds_v_pct = Some (-3.9); hdshot_pct = Some (-4.3);
      best_pct = -4.3 };
    { name = "povray"; baseline_s = 502.3; mem_refs = "1.6 trillion"; hds_pct = Some 0.001;
      halo_pct = None; hot_pct = -3.44; hds_v_pct = None; hdshot_pct = None; best_pct = -3.44 };
    { name = "roms"; baseline_s = 390.2; mem_refs = "450 billion"; hds_pct = Some (-0.02);
      halo_pct = Some (-0.1); hot_pct = -17.8; hds_v_pct = None; hdshot_pct = None;
      best_pct = -17.8 };
    { name = "leela"; baseline_s = 555.8; mem_refs = "837 billion"; hds_pct = Some 0.9;
      halo_pct = Some (-0.8); hot_pct = -25.3; hds_v_pct = None; hdshot_pct = None;
      best_pct = -25.3 };
    { name = "swissmap"; baseline_s = 2.275; mem_refs = "1.6 billion"; hds_pct = Some 1.1;
      halo_pct = Some (-1.5); hot_pct = -11.1; hds_v_pct = None; hdshot_pct = None;
      best_pct = -11.1 };
    { name = "libc"; baseline_s = 1.080; mem_refs = "630 million"; hds_pct = Some 0.01;
      halo_pct = Some (-0.73); hot_pct = -1.85; hds_v_pct = Some (-2.77);
      hdshot_pct = Some (-0.93); best_pct = -2.77 };
    { name = "health"; baseline_s = 32.73; mem_refs = "5.6 billion"; hds_pct = Some (-35.9);
      halo_pct = Some (-43.1); hot_pct = -43.3; hds_v_pct = Some (-1.31);
      hdshot_pct = Some (-43.4); best_pct = -43.4 };
    { name = "ft"; baseline_s = 5.04; mem_refs = "768 million"; hds_pct = Some (-42.8);
      halo_pct = Some (-47.0); hot_pct = -73.0; hds_v_pct = Some (-1.0);
      hdshot_pct = Some (-74.0); best_pct = -74.0 };
    { name = "analyzer"; baseline_s = 18.08; mem_refs = "10.1 billion"; hds_pct = Some (-15.9);
      halo_pct = Some (-17.6); hot_pct = -57.1; hds_v_pct = Some (-18.4);
      hdshot_pct = Some (-58.9); best_pct = -58.9 } ]

type table2_row = { name : string; kinds : string; sites : int; counters : int }

let table2 =
  [ { name = "mysql"; kinds = "fixed"; sites = 10; counters = 6 };
    { name = "perl"; kinds = "regular & fixed"; sites = 15; counters = 7 };
    { name = "mcf"; kinds = "fixed"; sites = 6; counters = 2 };
    { name = "omnetpp"; kinds = "fixed"; sites = 52; counters = 6 };
    { name = "xalanc"; kinds = "fixed"; sites = 2; counters = 2 };
    { name = "povray"; kinds = "all"; sites = 8; counters = 1 };
    { name = "roms"; kinds = "all"; sites = 20; counters = 1 };
    { name = "leela"; kinds = "all"; sites = 4; counters = 1 };
    { name = "swissmap"; kinds = "all"; sites = 1; counters = 1 };
    { name = "libc"; kinds = "fixed"; sites = 6; counters = 2 };
    { name = "health"; kinds = "fixed & all"; sites = 3; counters = 2 };
    { name = "ft"; kinds = "fixed & all"; sites = 3; counters = 2 };
    { name = "analyzer"; kinds = "fixed & all"; sites = 5; counters = 3 } ]

type table4_row = {
  name : string;
  hds_hot : int;
  hds_all : int;
  halo_hot : int option;
  halo_all : int option;
}

let table4 =
  [ { name = "mysql"; hds_hot = 2; hds_all = 80; halo_hot = None; halo_all = None };
    { name = "perl"; hds_hot = 76; hds_all = 32_977_460; halo_hot = None; halo_all = None };
    { name = "mcf"; hds_hot = 4; hds_all = 33; halo_hot = Some 10; halo_all = Some 59_847 };
    { name = "omnetpp"; hds_hot = 67; hds_all = 123_727; halo_hot = None; halo_all = None };
    { name = "xalanc"; hds_hot = 54; hds_all = 27_464; halo_hot = None; halo_all = None };
    { name = "povray"; hds_hot = 0; hds_all = 16_879; halo_hot = None; halo_all = None };
    { name = "roms"; hds_hot = 0; hds_all = 10_690; halo_hot = Some 0; halo_all = Some 226_552 };
    { name = "leela"; hds_hot = 0; hds_all = 809; halo_hot = Some 1; halo_all = Some 198_816 };
    { name = "swissmap"; hds_hot = 7; hds_all = 149_191; halo_hot = Some 4; halo_all = Some 59_864 };
    { name = "libc"; hds_hot = 8; hds_all = 1_072; halo_hot = Some 6; halo_all = Some 6_639 };
    { name = "health"; hds_hot = 683_334; hds_all = 683_334; halo_hot = Some 1_318_819;
      halo_all = Some 1_318_819 };
    { name = "ft"; hds_hot = 13_334; hds_all = 40_000; halo_hot = Some 20_000;
      halo_all = Some 59_998 };
    { name = "analyzer"; hds_hot = 2_242; hds_all = 2_242; halo_hot = Some 8_196;
      halo_all = Some 8_196 } ]

type table5_row = {
  name : string;
  prof_ha : float;
  prof_hot : int;
  prof_hds : int;
  long_ha : float;
  long_hot : int;
  long_hds : int;
}

let table5 =
  [ { name = "mysql"; prof_ha = 93.0; prof_hot = 13; prof_hds = 7; long_ha = 86.5; long_hot = 7; long_hds = 5 };
    { name = "perl"; prof_ha = 60.8; prof_hot = 174; prof_hds = 120; long_ha = 53.5; long_hot = 109; long_hds = 85 };
    { name = "mcf"; prof_ha = 89.3; prof_hot = 6; prof_hds = 3; long_ha = 99.9; long_hot = 6; long_hds = 3 };
    { name = "omnetpp"; prof_ha = 61.1; prof_hot = 230; prof_hds = 94; long_ha = 52.1; long_hot = 153; long_hds = 80 };
    { name = "xalanc"; prof_ha = 75.4; prof_hot = 236; prof_hds = 67; long_ha = 72.9; long_hot = 101; long_hds = 67 };
    { name = "povray"; prof_ha = 50.1; prof_hot = 20; prof_hds = 20; long_ha = 28.9; long_hot = 20; long_hds = 20 };
    { name = "roms"; prof_ha = 33.4; prof_hot = 20; prof_hds = 20; long_ha = 74.5; long_hot = 20; long_hds = 20 };
    { name = "leela"; prof_ha = 37.2; prof_hot = 5; prof_hds = 5; long_ha = 70.1; long_hot = 5; long_hds = 5 };
    { name = "swissmap"; prof_ha = 87.5; prof_hot = 8; prof_hds = 8; long_ha = 97.5; long_hot = 8; long_hds = 8 };
    { name = "libc"; prof_ha = 94.5; prof_hot = 438; prof_hds = 384; long_ha = 93.1; long_hot = 429; long_hds = 376 };
    { name = "health"; prof_ha = 97.2; prof_hot = 1_733_377; prof_hds = 213; long_ha = 99.9; long_hot = 1_733_377; long_hds = 213 };
    { name = "ft"; prof_ha = 82.2; prof_hot = 20_000; prof_hds = 868; long_ha = 98.5; long_hot = 20_000; long_hds = 868 };
    { name = "analyzer"; prof_ha = 98.5; prof_hot = 103_613; prof_hds = 3; long_ha = 88.5; long_hot = 103_613; long_hds = 3 } ]

type table6_row = {
  name : string;
  calls_avoided : int;
  instr_pct : float;
  peak_before_mb : float;
  peak_after_mb : float;
}

let table6 =
  [ { name = "mysql"; calls_avoided = 12; instr_pct = -1.5; peak_before_mb = 18.; peak_after_mb = 426. };
    { name = "perl"; calls_avoided = 119; instr_pct = 0.07; peak_before_mb = 92.; peak_after_mb = 94. };
    { name = "mcf"; calls_avoided = 5; instr_pct = 0.3; peak_before_mb = 292.; peak_after_mb = 333. };
    { name = "omnetpp"; calls_avoided = 93; instr_pct = 1.6; peak_before_mb = 248.; peak_after_mb = 250. };
    { name = "xalanc"; calls_avoided = 235; instr_pct = -0.31; peak_before_mb = 368.; peak_after_mb = 405. };
    { name = "povray"; calls_avoided = 10_833; instr_pct = -0.2; peak_before_mb = 8.8; peak_after_mb = 8.6 };
    { name = "roms"; calls_avoided = 1_415_999; instr_pct = -0.1; peak_before_mb = 867.; peak_after_mb = 862. };
    { name = "leela"; calls_avoided = 30_263_160; instr_pct = -25.2; peak_before_mb = 28.; peak_after_mb = 20. };
    { name = "swissmap"; calls_avoided = 148_479; instr_pct = 9.5; peak_before_mb = 619.; peak_after_mb = 318. };
    { name = "libc"; calls_avoided = 383; instr_pct = -7.1; peak_before_mb = 81.; peak_after_mb = 88. };
    { name = "health"; calls_avoided = 1_733_376; instr_pct = -2.0; peak_before_mb = 56.; peak_after_mb = 43. };
    { name = "ft"; calls_avoided = 19_999; instr_pct = -1.1; peak_before_mb = 7.1; peak_after_mb = 6.5 };
    { name = "analyzer"; calls_avoided = 103_612; instr_pct = -0.1; peak_before_mb = 18.; peak_after_mb = 10. } ]

type fig1_row = { name : string; heap_pct : float; hot_pct : float; hot_objs : int }

(* Figure 1 bar heights are approximate visual reads; the object counts
   printed in the bars equal Table 5's profiling Hot column. *)
let fig1 =
  [ { name = "mysql"; heap_pct = 96.; hot_pct = 93.0; hot_objs = 13 };
    { name = "perl"; heap_pct = 80.; hot_pct = 60.8; hot_objs = 174 };
    { name = "mcf"; heap_pct = 95.; hot_pct = 89.3; hot_objs = 6 };
    { name = "omnetpp"; heap_pct = 85.; hot_pct = 61.1; hot_objs = 230 };
    { name = "xalanc"; heap_pct = 88.; hot_pct = 75.4; hot_objs = 236 };
    { name = "povray"; heap_pct = 70.; hot_pct = 50.1; hot_objs = 20 };
    { name = "roms"; heap_pct = 60.; hot_pct = 33.4; hot_objs = 20 };
    { name = "leela"; heap_pct = 65.; hot_pct = 37.2; hot_objs = 5 };
    { name = "swissmap"; heap_pct = 95.; hot_pct = 87.5; hot_objs = 8 };
    { name = "libc"; heap_pct = 97.; hot_pct = 94.5; hot_objs = 438 };
    { name = "health"; heap_pct = 99.; hot_pct = 97.2; hot_objs = 1_733_377 };
    { name = "ft"; heap_pct = 90.; hot_pct = 82.2; hot_objs = 20_000 };
    { name = "analyzer"; heap_pct = 99.; hot_pct = 98.5; hot_objs = 103_613 } ]

(* Figure 10, approximate reads. *)
let fig10_mysql = [ (2, 4.6); (4, 8.2); (8, 12.3); (16, 15.4) ]
let fig10_mcf = [ (2, 10.1); (4, 6.4); (8, -1.2); (16, 1.3) ]

let find_table3 name = List.find (fun (r : table3_row) -> r.name = name) table3
let find_table2 name = List.find (fun (r : table2_row) -> r.name = name) table2
let find_table4 name = List.find (fun (r : table4_row) -> r.name = name) table4
let find_table5 name = List.find (fun (r : table5_row) -> r.name = name) table5
let find_table6 name = List.find (fun (r : table6_row) -> r.name = name) table6

let benchmarks = List.map (fun (r : table2_row) -> r.name) table2
