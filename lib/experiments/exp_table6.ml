(* Table 6: costs and benefits of the best PreFix version — malloc/free
   calls avoided, dynamic instruction-count change, and peak memory
   before/after. *)

module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics

let title = "Table 6: best PreFix costs and benefits (measured | paper)"

let report () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "best"; "calls avoided"; "instr change"; "peak KB (base->pfx)";
          "paper avoided"; "paper instr"; "paper peak MB" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      let best, label = Harness.best_prefix r in
      let p = Paper_data.find_table6 r.wl.name in
      T.add_row t
        [ r.wl.name;
          label;
          T.fmt_int best.metrics.M.calls_avoided;
          T.fmt_pct (M.instr_pct_change ~baseline:r.baseline.metrics best.metrics);
          Printf.sprintf "%s -> %s"
            (T.fmt_int (r.baseline.metrics.M.peak_bytes / 1024))
            (T.fmt_int (best.metrics.M.peak_bytes / 1024));
          T.fmt_int p.calls_avoided;
          T.fmt_pct p.instr_pct;
          Printf.sprintf "%.1f -> %.1f" p.peak_before_mb p.peak_after_mb ])
    (Harness.run_all ());
  title ^ "\n" ^ T.render t
