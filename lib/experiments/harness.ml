module Metrics = Prefix_runtime.Metrics
module Plan = Prefix_core.Plan
module Pipeline = Prefix_core.Pipeline
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Hds_policy = Prefix_runtime.Hds_policy
module Halo_policy = Prefix_runtime.Halo_policy
module Prefix_policy = Prefix_runtime.Prefix_policy
module Block_policy = Prefix_runtime.Block_policy
module Trace_stats = Prefix_trace.Trace_stats
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Workload = Prefix_workloads.Workload

type policy_run = { metrics : Metrics.t; plan : Plan.t option }

type long_source =
  | Materialized of Prefix_trace.Packed.t
  | Streamed of (unit -> Prefix_trace.Stream.t)

type result = {
  wl : Workload.t;
  profiling_trace : Prefix_trace.Trace.t;
  long_source : long_source;
  long_events : int;
  profiling_stats : Trace_stats.t;
  long_stats : Trace_stats.t;
  baseline : policy_run;
  hds : policy_run;
  halo : policy_run;
  block : policy_run;
  prefix_hot : policy_run;
  prefix_hds : policy_run;
  prefix_hdshot : policy_run;
  long_hot_set : (int, unit) Hashtbl.t;
  long_hds_set : (int, unit) Hashtbl.t;
}

let long_packed r =
  match r.long_source with
  | Materialized p -> p
  | Streamed mk -> Prefix_trace.Stream.to_packed (mk ())

let long_stream r =
  match r.long_source with
  | Materialized p -> Prefix_trace.Stream.of_packed p
  | Streamed mk -> mk ()

let long_trace r = Prefix_trace.Packed.to_trace (long_packed r)

module Span = Prefix_obs.Span
module Log = (val Logs.src_log Prefix_obs.Log.harness)

let seed = 7

let pipeline_config = Pipeline.default_config

let exec_config = Executor.default_config

(* Evaluation-run knobs, configured once at CLI startup (before any
   benchmark runs, so the memo cache never mixes modes). *)
let streaming = ref false
let set_streaming b = streaming := b
let segment_events : int option ref = ref None
let set_segment_events n = segment_events := n
let eval_scale = ref Workload.Long
let set_eval_scale s = eval_scale := s
let stream_container : [ `Generator | `Columnar ] ref = ref `Generator
let set_stream_container c = stream_container := c

(* Recycling-slot assignment mode for the PreFix plans: Figure 7's
   modulo-N rotation, or greedy interval coloring over profiled
   liveness (the CLI's --slots flag).  Configured once at startup like
   the other evaluation knobs. *)
let slot_mode = ref Pipeline.Modulo
let set_slot_mode m = slot_mode := m
let effective_pipeline_config () = { pipeline_config with Pipeline.slot_mode = !slot_mode }

(* Decode-once fan-out: replay all seven policies as consumers of a
   single decode pass ({!Executor.run_stream_many}) instead of
   re-decoding the evaluation stream per policy.  Off by default (the
   per-policy path is the long-standing reference); reports are
   byte-identical either way — CI diffs them. *)
let decode_once = ref false
let set_decode_once b = decode_once := b

(* Spooled stream containers are temp files; cleanup is registered once
   from the main domain (at_exit is domain-local in OCaml 5, so worker
   domains must not register their own). *)
let spooled_files = ref []
let spooled_mutex = Mutex.create ()

let () =
  at_exit (fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !spooled_files)

(* Deduped registration: a path already on the list (e.g. re-registered
   across run_many invocations) is not added twice, so the at_exit
   sweep never double-removes and the list cannot grow without bound. *)
let add_spooled path =
  Mutex.lock spooled_mutex;
  if not (List.mem path !spooled_files) then spooled_files := path :: !spooled_files;
  Mutex.unlock spooled_mutex

(* Remove a spool file eagerly (replay exception / guardrail breach):
   the benchmark that owned it will never produce a result, so nothing
   can re-stream from the path, and waiting for at_exit would leak the
   file for the whole process lifetime (a long fuzz campaign, say). *)
let unspool path =
  Mutex.lock spooled_mutex;
  spooled_files := List.filter (fun p -> p <> path) !spooled_files;
  Mutex.unlock spooled_mutex;
  try Sys.remove path with Sys_error _ -> ()

let spool_columnar (wl : Workload.t) ~scale ~segment_events =
  let s = Workload.generate_stream wl ~scale ~seed:(seed + 1) ?segment_events () in
  let path = Filename.temp_file ("prefix-" ^ wl.name ^ "-") ".pfxt" in
  add_spooled path;
  Prefix_trace.Stream.to_columnar_file s path;
  path

(* Degree of parallelism for [run_all]; 1 (the exact legacy sequential
   path) unless the CLI's --jobs configured otherwise.  Doubles as the
   prefetch-pipelining switch: at [jobs >= 2] streamed replays decode
   segment N+1 on a prefetch worker while segment N replays. *)
let jobs = ref 1
let set_jobs n = jobs := max 1 n

(* Dedicated pool for stream-prefetch producers ({!Stream.prefetched}),
   sized so every concurrently-running benchmark (at most [!jobs], the
   run_many fan-out) can have its one active producer on a worker.
   Separate from run_many's own pool — a producer must truly run
   concurrently with its consumer, never inline.  Created on first use,
   under a mutex (worker domains may race here); never shut down —
   parked workers cost nothing and die with the process. *)
let prefetch_pool_mutex = Mutex.create ()
let prefetch_pool_ref = ref None

let prefetch_pool () =
  Mutex.lock prefetch_pool_mutex;
  let p =
    match !prefetch_pool_ref with
    | Some p -> p
    | None ->
      let p = Prefix_parallel.Pool.create ~jobs:(!jobs + 1) in
      prefetch_pool_ref := Some p;
      p
  in
  Mutex.unlock prefetch_pool_mutex;
  p

let prefetch_spawn f = Prefix_parallel.Pool.submit (prefetch_pool ()) f

let run_benchmark_spooling (wl : Workload.t) ~spooled_path =
  (* Each benchmark derives all randomness from fixed per-benchmark
     seeds (no RNG state is shared across tasks), so a pooled run is
     bit-identical to a sequential one whatever the schedule. *)
  Span.with_ ~cat:"harness" ~args:[ ("benchmark", wl.name) ] ("benchmark:" ^ wl.name)
  @@ fun () ->
  Log.info (fun m -> m "%s: generating traces" wl.name);
  let eval_scale = !eval_scale in
  let profiling_trace, long_source =
    if !streaming then begin
      (* Streamed evaluation: the long run is never materialized.  Each
         consumer below re-runs the deterministic generator, holding one
         segment of trace memory at a time. *)
      let profiling_trace =
        Span.with_ ~cat:"harness" "generate-traces" (fun () ->
            wl.generate ~scale:Profiling ~seed ())
      in
      let segment_events = !segment_events in
      let mk =
        match !stream_container with
        | `Generator ->
          fun () ->
            Workload.generate_stream wl ~scale:eval_scale ~seed:(seed + 1)
              ?segment_events ()
        | `Columnar ->
          (* Spool the deterministic stream once into a columnar (v3)
             container, then every replay below streams from the file —
             exercising the on-disk decode path end to end.  The
             container carries the same segments, so reports stay
             byte-identical to the generator-backed (and materialized)
             paths. *)
          let path =
            Span.with_ ~cat:"harness" "spool-columnar" (fun () ->
                spool_columnar wl ~scale:eval_scale ~segment_events)
          in
          spooled_path := Some path;
          fun () -> Prefix_trace.Stream.of_binary_file ?segment_events path
      in
      (profiling_trace, Streamed mk)
    end
    else begin
      let profiling_trace, long_trace =
        Span.with_ ~cat:"harness" "generate-traces" (fun () ->
            ( wl.generate ~scale:Profiling ~seed (),
              wl.generate ~scale:eval_scale ~seed:(seed + 1) () ))
      in
      (* Pack once; the packed form is read-only and shared by analysis
         and all seven policy replays below (and by any pooled experiment
         that replays this benchmark's long trace again). *)
      let long_packed =
        Span.with_ ~cat:"harness" "pack-traces" (fun () ->
            Prefix_trace.Packed.of_trace long_trace)
      in
      (profiling_trace, Materialized long_packed)
    end
  in
  let long_stream_of () =
    match long_source with
    | Materialized p -> Prefix_trace.Stream.of_packed p
    | Streamed mk ->
      let s = mk () in
      (* Pipelined decode: with worker domains available, segment N+1
         is decoded on a prefetch worker while segment N is consumed.
         The wrapper forwards the exact segment sequence, so reports
         stay byte-identical to the unwrapped stream (CI diffs the
         --jobs 1 and --jobs 2 reports).  At --jobs 1 the pipeline is
         off: same domain count and allocation behavior as before. *)
      if !jobs >= 2 then Prefix_trace.Stream.prefetched ~spawn:prefetch_spawn s
      else s
  in
  (* Pipeline.analyze rather than Trace_stats.analyze so both analysis
     passes appear as "trace-analysis" spans in obs reports. *)
  let profiling_stats = Pipeline.analyze profiling_trace in
  let long_stats =
    match long_source with
    | Materialized p -> Pipeline.analyze_packed p
    | Streamed _ -> Pipeline.analyze_stream (long_stream_of ())
  in
  let long_events = Trace_stats.trace_length long_stats in
  (* Long-run classification, for pollution and capture accounting. *)
  let long_hot_set = Hashtbl.create 1024 in
  List.iter
    (fun (o : Trace_stats.obj_info) -> Hashtbl.replace long_hot_set o.obj ())
    (Trace_stats.hot_objects ~coverage:pipeline_config.coverage long_stats);
  let long_hds_set = Hashtbl.create 1024 in
  Log.info (fun m -> m "%s: detecting long-run streams" wl.name);
  let long_ohds =
    Span.with_ ~cat:"harness" "long-run-classification" (fun () ->
        Detector.detect_stream ~config:pipeline_config.detector long_stats (long_stream_of ()))
  in
  List.iter
    (fun h -> List.iter (fun o -> Hashtbl.replace long_hds_set o ()) (Hds.objs h))
    long_ohds;
  let cls =
    { Policy.is_hot = Hashtbl.mem long_hot_set; is_hds = Hashtbl.mem long_hds_set }
  in
  let costs = exec_config.costs in
  (* Profile-side plans. *)
  Log.info (fun m -> m "%s: planning" wl.name);
  let plan_of variant =
    Pipeline.plan_with_stats
      ~config:(effective_pipeline_config ())
      ~variant profiling_stats profiling_trace
  in
  let plan_hot = plan_of Plan.Hot in
  let plan_hds = plan_of Plan.Hds in
  let plan_hdshot = plan_of Plan.HdsHot in
  let hds_plan = Hds_policy.plan_of_trace ~detector:pipeline_config.detector profiling_stats profiling_trace in
  let halo_plan = Prefix_halo.Halo.plan_of_trace profiling_stats profiling_trace in
  let block_plan = Block_policy.plan_of_trace profiling_trace in
  (* Long-run replays. *)
  let baseline, hds, halo, block, prefix_hot, prefix_hds, prefix_hdshot =
    match long_source with
    | Streamed _ when !decode_once ->
      (* Decode-once fan-out: one pass over the evaluation stream hands
         each decoded segment to all seven policy sessions before the
         next segment is decoded.  Sessions are independent, so the
         seven outcomes — and hence the report — are byte-identical to
         the sequential per-policy replays below. *)
      Log.info (fun m -> m "%s: replaying all policies (decode-once)" wl.name);
      let policies =
        [ (fun heap -> Policy.baseline costs heap);
          (fun heap -> Hds_policy.policy costs heap hds_plan cls);
          (fun heap -> Halo_policy.policy costs heap halo_plan cls);
          (fun heap -> Block_policy.policy costs heap block_plan cls);
          (fun heap -> Prefix_policy.policy costs heap plan_hot cls);
          (fun heap -> Prefix_policy.policy costs heap plan_hds cls);
          (fun heap -> Prefix_policy.policy costs heap plan_hdshot cls) ]
      in
      let outcomes =
        Executor.run_stream_many ~config:exec_config ~policies (long_stream_of ())
      in
      Prefix_obs.Recorder.poll ~label:("benchmark:" ^ wl.name) ();
      let run plan (o : Executor.outcome) = { metrics = o.metrics; plan } in
      (match outcomes with
      | [ b; h; hl; blk; p_hot; p_hds; p_hdshot ] ->
        ( run None b,
          run None h,
          run None hl,
          run None blk,
          run (Some plan_hot) p_hot,
          run (Some plan_hds) p_hds,
          run (Some plan_hdshot) p_hdshot )
      | _ -> assert false)
    | _ ->
      let replay name policy plan =
        Log.info (fun m -> m "%s: replaying %s" wl.name name);
        let outcome =
          match long_source with
          | Materialized p -> Executor.run_packed ~config:exec_config ~policy p
          | Streamed _ -> Executor.run_stream ~config:exec_config ~policy (long_stream_of ())
        in
        (* Wall-clock fallback sample between policy replays, so a pooled
           experiment's timeline keeps moving even while every
           event-cadence tick belongs to some other domain's replay. *)
        Prefix_obs.Recorder.poll ~label:("benchmark:" ^ wl.name) ();
        { metrics = outcome.metrics; plan }
      in
      let baseline = replay "baseline" (fun heap -> Policy.baseline costs heap) None in
      let hds = replay "HDS" (fun heap -> Hds_policy.policy costs heap hds_plan cls) None in
      let halo = replay "HALO" (fun heap -> Halo_policy.policy costs heap halo_plan cls) None in
      let block =
        replay "Block" (fun heap -> Block_policy.policy costs heap block_plan cls) None
      in
      let prefix_run plan =
        replay (Plan.variant_name plan.Plan.variant)
          (fun heap -> Prefix_policy.policy costs heap plan cls)
          (Some plan)
      in
      ( baseline,
        hds,
        halo,
        block,
        prefix_run plan_hot,
        prefix_run plan_hds,
        prefix_run plan_hdshot )
  in
  { wl;
    profiling_trace;
    long_source;
    long_events;
    profiling_stats;
    long_stats;
    baseline;
    hds;
    halo;
    block;
    prefix_hot;
    prefix_hds;
    prefix_hdshot;
    long_hot_set;
    long_hds_set }

(* A benchmark that dies mid-flight (strict-replay anomaly, guardrail
   breach, I/O failure) can never hand its result — and therefore its
   re-streamable spool file — to anyone, so the file is removed right
   here rather than lingering until at_exit.  On success the spool file
   must outlive this call: the result's [Streamed] closures re-stream
   from it (reports, benches, checkpoints). *)
let run_benchmark (wl : Workload.t) =
  let spooled_path = ref None in
  try run_benchmark_spooling wl ~spooled_path
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Option.iter unspool !spooled_path;
    Printexc.raise_with_backtrace e bt

(* The memo cache is shared by every experiment; pooled [run_all]s fill
   it from several domains at once, so all access goes through a mutex
   (never held while a benchmark actually runs). *)
let cache : (string, result) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

let cached name =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt cache name in
  Mutex.unlock cache_mutex;
  r

(* First store wins, so two domains racing on the same benchmark agree
   on which (bit-identical anyway) result everyone sees. *)
let store name r =
  Mutex.lock cache_mutex;
  let r =
    match Hashtbl.find_opt cache name with
    | Some existing -> existing
    | None ->
      Hashtbl.replace cache name r;
      r
  in
  Mutex.unlock cache_mutex;
  r

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let find name =
  match cached name with
  | Some r -> r
  | None -> store name (run_benchmark (Prefix_workloads.Registry.find name))

let run_many ?jobs:j names =
  let j = match j with Some j -> max 1 j | None -> !jobs in
  let missing = List.filter (fun n -> cached n = None) names in
  (match missing with
  | [] -> ()
  | [ n ] -> ignore (find n)
  | missing when j = 1 -> List.iter (fun n -> ignore (find n)) missing
  | missing ->
    Prefix_parallel.Pool.with_pool ~jobs:j (fun pool ->
        let rs =
          Prefix_parallel.Pool.map pool
            (fun n -> run_benchmark (Prefix_workloads.Registry.find n))
            missing
        in
        List.iter2 (fun n r -> ignore (store n r)) missing rs));
  List.map find names

let run_all ?jobs () = run_many ?jobs Prefix_workloads.Registry.names

let time_delta r (p : policy_run) = Metrics.time_pct_change ~baseline:r.baseline.metrics p.metrics

let best_prefix r =
  let candidates =
    [ (r.prefix_hot, "Hot"); (r.prefix_hds, "HDS"); (r.prefix_hdshot, "HDS+Hot") ]
  in
  List.fold_left
    (fun (bp, bl) (p, l) ->
      if p.metrics.Metrics.cycles.total_cycles < bp.metrics.Metrics.cycles.total_cycles then
        (p, l)
      else (bp, bl))
    (List.hd candidates) (List.tl candidates)
