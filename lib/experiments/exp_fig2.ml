(* Figure 2: layout determination on the cc1 trace — the paper's worked
   example, reproduced verbatim: the ten observed HDSs (in descending
   order of memory references) are reconstituted by Algorithm 1 and the
   final placement order is printed. *)

module Hds = Prefix_hds.Hds
module Layout = Prefix_core.Layout

let title = "Figure 2: layout determination (cc1 example)"

(* The OHDS of the figure: object-id sets in descending reference order.
   Orders within each stream follow the figure's listing. *)
let cc1_ohds =
  [ ([ 2012; 2009 ], 1000);
    ([ 2018; 2009 ], 900);
    ([ 2012; 1963 ], 800);
    ([ 1963; 1967 ], 700);
    ([ 2419; 24 ], 600);
    ([ 2017; 22 ], 500);
    ([ 22; 23 ], 400);
    ([ 2419; 2422 ], 300);
    ([ 2012; 2016 ], 200);
    ([ 2017; 2018 ], 100) ]

(* The paper's final placement order for the preallocated region. *)
let paper_layout = [ 2018; 2009; 2012; 1963; 1967; 2419; 24; 2017; 22; 23; 2422; 2016 ]

let reconstitute () =
  let ohds = List.map (fun (objs, refs) -> Hds.make ~objs ~refs) cc1_ohds in
  Layout.reconstitute ohds

let report () =
  let result = reconstitute () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf "OHDS (input, descending refs):\n";
  List.iter
    (fun (objs, refs) ->
      Buffer.add_string buf
        (Printf.sprintf "  {%s}  refs=%d\n"
           (String.concat "," (List.map string_of_int objs))
           refs))
    cc1_ohds;
  Buffer.add_string buf "RHDS (reconstituted):\n";
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "  {%s}\n"
           (String.concat "," (List.map string_of_int (Hds.objs h)))))
    result.rhds;
  Buffer.add_string buf
    (Printf.sprintf "singletons: {%s}\n"
       (String.concat "," (List.map string_of_int result.singletons)));
  let order = Layout.placement_order result in
  Buffer.add_string buf
    (Printf.sprintf "placement order: {%s}\n"
       (String.concat ", " (List.map string_of_int order)));
  Buffer.add_string buf
    (Printf.sprintf "paper's order:   {%s}\n"
       (String.concat ", " (List.map string_of_int paper_layout)));
  let covered =
    List.filter (fun c -> c <> Layout.Not_covered) result.coverage |> List.length
  in
  Buffer.add_string buf
    (Printf.sprintf "coverage: %d of %d input HDS fully or partially covered; %d objects placed (paper: 12)\n"
       covered (List.length cc1_ohds) (List.length order));
  Buffer.contents buf
