(* Figure 1: the paper plots, per benchmark, the % of memory accesses
   from all heap objects and from hot heap objects, with the dynamic
   hot-object count printed in each bar.

   Our traces represent non-heap work as opaque Compute blocks, so the
   "% of all memory accesses" denominator does not exist here; what the
   figure is really demonstrating — a handful of dynamic objects covers
   nearly all heap accesses — is measured directly: the share of heap
   accesses covered by the selected hot objects (the same quantity as
   Table 5's HA column) and the number of objects that takes. *)

module T = Prefix_util.Tablefmt
module Trace_stats = Prefix_trace.Trace_stats

let title = "Figure 1: hot-object coverage of heap accesses (profiling runs)"

let report () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "hot HA %"; "#hot objects"; "#prealloc slots"; "paper hot %";
          "paper #hot" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      let stats = r.profiling_stats in
      let hot = Trace_stats.hot_objects ~coverage:Harness.pipeline_config.coverage stats in
      let hot_share =
        Trace_stats.heap_access_share stats
          (List.map (fun (o : Trace_stats.obj_info) -> o.obj) hot)
      in
      let best, _ = Harness.best_prefix r in
      let slots =
        match best.plan with Some p -> List.length p.slots | None -> 0
      in
      let p = Paper_data.(List.find (fun (x : fig1_row) -> x.name = r.wl.name) fig1) in
      T.add_row t
        [ r.wl.name;
          T.fmt_f (100. *. hot_share);
          T.fmt_int (List.length hot);
          T.fmt_int slots;
          T.fmt_f p.hot_pct;
          T.fmt_int p.hot_objs ])
    (Harness.run_all ());
  title ^ "\n" ^ T.render t
  ^ "(slot counts for recycling benchmarks are N recycled slots, not distinct objects;\n\
    \ absolute object counts are scaled down with the workloads — see DESIGN.md)\n"
