(* The full experiment suite: one entry per table/figure plus the
   ablations, runnable individually (CLI, bench) or all together. *)

type experiment = {
  id : string;
  what : string;
  run : unit -> string;
}

let all =
  [ { id = "fig1"; what = "heap vs hot-heap access shares"; run = Exp_fig1.report };
    { id = "fig2"; what = "layout determination example (cc1)"; run = Exp_fig2.report };
    { id = "table2"; what = "context kinds, sites, counters"; run = Exp_table2.report };
    { id = "table3"; what = "execution-time changes"; run = Exp_table3.report };
    { id = "table4"; what = "pollution in HDS and HALO"; run = Exp_table4.report };
    { id = "table5"; what = "capture, profiling vs long run"; run = Exp_table5.report };
    { id = "table6"; what = "calls avoided, instructions, peak memory"; run = Exp_table6.report };
    { id = "fig9"; what = "access heatmaps (leela)"; run = Exp_fig9.report };
    { id = "fig10"; what = "multithreaded speedups"; run = Exp_fig10.report };
    { id = "fig11-13"; what = "miss rates and backend stalls"; run = Exp_fig11_13.report };
    { id = "fig14"; what = "binary size model"; run = Exp_fig14.report };
    { id = "ablations"; what = "LCS vs Sequitur, sharing, recycling, merge rule, hybrid";
      run = Ablations.report };
    { id = "stability"; what = "best-PreFix delta across workload seeds";
      run = Exp_stability.report } ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all () =
  String.concat "\n" (List.map (fun e -> e.run ()) all)
