(* Figure 9: data-access heat maps of the baseline and PreFix-optimized
   binaries — X is time, Y is relative heap offset.  The paper plots
   leela; our simulated baseline allocator reuses leela's freed node
   space immediately (a best-fit free list is tighter than glibc under
   fragmentation), so the footprint contrast the paper shows barely
   exists for leela here.  We plot ft instead, where the same phenomenon
   — hot accesses spread over the whole heap vs packed into the
   preallocated region — appears exactly as in the paper's figure. *)

module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Prefix_policy = Prefix_runtime.Prefix_policy
module Heatmap = Prefix_cachesim.Heatmap

let title = "Figure 9: access heatmaps, baseline vs PreFix (ft; see note re leela)"

let benchmark = "ft"

let report () =
  let r = Harness.find benchmark in
  let pred obj = Hashtbl.mem r.long_hot_set obj in
  let costs = Harness.exec_config.costs in
  let base =
    Executor.run_packed ~config:Harness.exec_config ~heatmap_objs:pred
      ~policy:(fun heap -> Policy.baseline costs heap)
      (Harness.long_packed r)
  in
  let best_plan = Option.get r.prefix_hot.plan in
  let cls = Policy.no_classification in
  let opt =
    Executor.run_packed ~config:Harness.exec_config ~heatmap_objs:pred
      ~policy:(fun heap -> Prefix_policy.policy costs heap best_plan cls)
      (Harness.long_packed r)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (title ^ "\n");
  (match (base.heatmap, opt.heatmap) with
  | Some hb, Some ho ->
    Buffer.add_string buf "--- baseline ---\n";
    Buffer.add_string buf (Heatmap.render hb);
    Buffer.add_string buf "--- PreFix optimized ---\n";
    Buffer.add_string buf (Heatmap.render ho);
    Buffer.add_string buf
      (Printf.sprintf
         "footprint of tracked accesses: baseline %d KB -> optimized %d KB (%.0fx smaller; paper: ~10 MB -> ~0.2 MB, ~50x)\n"
         (Heatmap.footprint_bytes hb / 1024)
         (Heatmap.footprint_bytes ho / 1024)
         (float_of_int (Heatmap.footprint_bytes hb)
         /. float_of_int (max 1 (Heatmap.footprint_bytes ho))))
  | _ -> Buffer.add_string buf "(heatmaps unavailable)\n");
  Buffer.contents buf
