(* Figure 14: static binary sizes, baseline vs best PreFix.  We have no
   binaries to rewrite; the instrumentation model of
   {!Prefix_core.Instrument} prices each transformed site and the
   runtime stub against a nominal baseline text size scaled from the
   paper's bars. *)

module T = Prefix_util.Tablefmt
module Instrument = Prefix_core.Instrument
module Trace_stats = Prefix_trace.Trace_stats
module Event = Prefix_trace.Event
module Trace = Prefix_trace.Trace

let title = "Figure 14: binary size, baseline -> best PreFix (modelled)"

(* Nominal baseline text sizes (KB), set to each program's rough scale. *)
let baseline_kb =
  [ ("mysql", 48_000); ("perl", 2_800); ("mcf", 40); ("omnetpp", 3_400); ("xalanc", 6_200);
    ("povray", 1_900); ("roms", 2_100); ("leela", 640); ("swissmap", 380); ("libc", 210);
    ("health", 34); ("ft", 28); ("analyzer", 450) ]

(* free/realloc sites in the model: one synthetic site per workload
   module's free/realloc call points, estimated from the trace (distinct
   sites whose objects get freed / realloc'd is not recorded, so we use
   a small constant plus a term in the number of instrumented sites). *)
let free_sites (r : Harness.result) =
  let has_free = ref false and has_realloc = ref false in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Free _ -> has_free := true
      | Realloc _ -> has_realloc := true
      | _ -> ())
    r.profiling_trace;
  ((if !has_free then 4 else 0), if !has_realloc then 2 else 0)

let report () =
  let t =
    T.create
      ~headers:[ "benchmark"; "baseline KB"; "best PreFix KB"; "growth %"; "paper note" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      let best, _ = Harness.best_prefix r in
      let plan = Option.get best.plan in
      let base = List.assoc r.wl.name baseline_kb * 1024 in
      let frees, reallocs = free_sites r in
      let opt =
        Instrument.optimized_size ~baseline:base ~plan ~free_sites:frees
          ~realloc_sites:reallocs ()
      in
      T.add_row t
        [ r.wl.name;
          T.fmt_int (base / 1024);
          T.fmt_int (opt / 1024);
          T.fmt_pct (Prefix_util.Stats.pct_change ~before:(float_of_int base) ~after:(float_of_int opt));
          "small growth; BOLT .bolt.org.text excluded" ])
    (Harness.run_all ());
  title ^ "\n" ^ T.render t
