(** Shared experiment machinery.

    Every table and figure derives from the same set of runs: for each
    benchmark we profile on the short input, build the plans, and replay
    the long input under seven policies (baseline, HDS [8], HALO, the
    Immix-style Block policy, and the three PreFix variants).
    [run_benchmark] performs that once;
    [run_all] memoizes across experiments so `bench/main.exe` replays
    each (benchmark, policy) pair exactly once however many tables ask
    for it. *)

module Metrics = Prefix_runtime.Metrics
module Plan = Prefix_core.Plan

type policy_run = { metrics : Metrics.t; plan : Plan.t option }

type long_source =
  | Materialized of Prefix_trace.Packed.t
      (** evaluation trace packed once, shared read-only by the seven
          policy replays and by experiments that replay it again *)
  | Streamed of (unit -> Prefix_trace.Stream.t)
      (** bounded-memory mode: each call re-runs the deterministic
          generator; no full trace ever exists in memory *)

type result = {
  wl : Prefix_workloads.Workload.t;
  profiling_trace : Prefix_trace.Trace.t;
  long_source : long_source;
  long_events : int;  (** length of the evaluation ("long") trace *)
  profiling_stats : Prefix_trace.Trace_stats.t;
  long_stats : Prefix_trace.Trace_stats.t;
  baseline : policy_run;
  hds : policy_run;
  halo : policy_run;
  block : policy_run;  (** Immix/Nofl-style block policy (interval-planned) *)
  prefix_hot : policy_run;
  prefix_hds : policy_run;
  prefix_hdshot : policy_run;
  long_hot_set : (int, unit) Hashtbl.t;  (** hot objects of the long run *)
  long_hds_set : (int, unit) Hashtbl.t;  (** long-run hot objects in streams *)
}

val long_packed : result -> Prefix_trace.Packed.t
(** The evaluation trace, materializing it first when the result was
    produced in streaming mode (experiments that need random access pay
    the memory cost only then). *)

val long_stream : result -> Prefix_trace.Stream.t
(** The evaluation trace as a segment stream (cheap in both modes). *)

val long_trace : result -> Prefix_trace.Trace.t
(** Boxed view of {!long_packed} — materializes; prefer the packed or
    streamed accessors. *)

val seed : int
(** The fixed experiment seed (7). *)

val set_streaming : bool -> unit
(** When true, [run_benchmark] evaluates the long run via
    {!Prefix_trace.Stream}: generation, analysis, stream detection and
    all seven policy replays hold one segment of trace memory at a time,
    and results are identical to the materialized path (the CLI's
    [--stream] flag).  Configure before the first run — the memo cache
    does not distinguish modes. *)

val set_segment_events : int option -> unit
(** Segment size (events) for streamed evaluation; [None] uses
    {!Prefix_trace.Stream.default_segment_events}. *)

val set_stream_container : [ `Generator | `Columnar ] -> unit
(** Source of the streamed evaluation (with {!set_streaming}):
    [`Generator] (default) re-runs the deterministic workload generator
    on every pass; [`Columnar] spools the stream once into a columnar
    (v3) container in the temp directory and streams every replay from
    the file — same segments, byte-identical reports, but the on-disk
    decode path is exercised end to end.  Spooled files are removed at
    process exit.  Configure before the first run (the CLI's
    [--stream-container] flag). *)

val set_eval_scale : Prefix_workloads.Workload.scale -> unit
(** Scale of the evaluation run (default [Long]; [Huge] is the
    streaming engine's target, ~10x longer). *)

val set_decode_once : bool -> unit
(** When true (and streaming), the seven policy replays run as consumers
    of a single decode pass ({!Prefix_runtime.Executor.run_stream_many})
    instead of each re-decoding the evaluation stream — one decode for
    seven replays.  Reports are byte-identical to the per-policy path
    (CI diffs them).  Off by default; the CLI's [--decode-once] flag.
    Configure before the first run. *)

val set_slot_mode : Prefix_core.Pipeline.slot_mode -> unit
(** Recycling-slot assignment mode for the PreFix plans: [Modulo]
    (default, Figure 7's rotation) or [Interval] (greedy coloring of
    profiled liveness intervals).  The CLI's [--slots] flag.  Configure
    before the first run — the memo cache does not distinguish modes. *)

val effective_pipeline_config : unit -> Prefix_core.Pipeline.config
(** {!pipeline_config} with the configured {!set_slot_mode} applied —
    what [run_benchmark] actually plans with. *)

val pipeline_config : Prefix_core.Pipeline.config
(** The configuration used for every benchmark's plans. *)

val exec_config : Prefix_runtime.Executor.config
(** Scaled hierarchy + default costs (see DESIGN.md). *)

val best_prefix : result -> policy_run * string
(** The best-performing PreFix variant (by cycles) and its short label
    ("Hot" / "HDS" / "HDS+Hot"). *)

val time_delta : result -> policy_run -> float
(** % execution-time change vs the run's baseline (negative = faster). *)

val run_benchmark : Prefix_workloads.Workload.t -> result
(** Run one benchmark end to end (not cached). *)

val set_jobs : int -> unit
(** Default degree of parallelism for {!run_all} / {!run_many} when no
    explicit [?jobs] is given.  Starts at 1 — the exact legacy
    sequential path; the CLI's [--jobs] flag lands here.  Values are
    clamped to [>= 1].  At [jobs >= 2], streamed replays additionally
    pipeline their decode ({!Prefix_trace.Stream.prefetched}): segment
    N+1 is decoded on a prefetch worker while segment N replays.
    Reports are unaffected — bit-identical whatever [jobs] is. *)

val run_all : ?jobs:int -> unit -> result list
(** All 13 benchmarks, memoized for the lifetime of the process.
    Uncached benchmarks run across a domain pool of [jobs] (default:
    the {!set_jobs} setting).  Every benchmark seeds its own RNGs from
    fixed constants, so results and report text are bit-identical
    whatever [jobs] is; only wall time changes. *)

val run_many : ?jobs:int -> string list -> result list
(** Like {!run_all} for an explicit benchmark list, preserving list
    order in the results. *)

val clear_cache : unit -> unit
(** Forget all memoized results (tests use this to force fresh runs). *)

val find : string -> result
(** Memoized lookup by benchmark name.

    Progress is reported through the ["prefix.harness"] [Logs] source
    (see {!Prefix_obs.Log.harness}); install a reporter with
    [Prefix_obs.Log.setup ~level:(Some Logs.Info) ()] — or pass
    [--verbose] / [--log-level info] to the CLI — to see it.  Each
    benchmark run is additionally wrapped in a ["benchmark:<name>"]
    observability span whose children cover trace generation, the
    analysis passes, planning and every policy replay. *)
