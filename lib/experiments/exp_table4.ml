(* Table 4: pollution in the HDS [8] and HALO memory regions — how many
   objects each technique directed to its special regions during the
   long run, and how many of those were actually hot. *)

module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics

let title = "Table 4: pollution in HDS and HALO regions (measured | paper)"

let report () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "HDS hot"; "HDS all"; "HALO hot"; "HALO all"; "paper HDS (hot/all)";
          "paper HALO (hot/all)" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      let p = Paper_data.find_table4 r.wl.name in
      let halo_paper =
        match (p.halo_hot, p.halo_all) with
        | Some h, Some a -> Printf.sprintf "%s / %s" (T.fmt_int h) (T.fmt_int a)
        | _ -> "na"
      in
      T.add_row t
        [ r.wl.name;
          T.fmt_int r.hds.metrics.M.region_hot_objects;
          T.fmt_int r.hds.metrics.M.region_objects;
          T.fmt_int r.halo.metrics.M.region_hot_objects;
          T.fmt_int r.halo.metrics.M.region_objects;
          Printf.sprintf "%s / %s" (T.fmt_int p.hds_hot) (T.fmt_int p.hds_all);
          halo_paper ])
    (Harness.run_all ());
  title ^ "\n" ^ T.render t
