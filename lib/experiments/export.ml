(* Structured CSV export of the headline results, for plotting outside
   this repository.  `bench/main.exe -- csv [dir]` writes:

     table3.csv   per-benchmark time deltas, all policies, plus paper values
     miss_rates.csv  L1/LLC/TLB rates and stalls, baseline vs best PreFix
     capture.csv  capture + pollution accounting per policy

   Fields are plain numbers; percentages are signed deltas vs baseline. *)

module M = Prefix_runtime.Metrics

let csv_line cells = String.concat "," cells ^ "\n"

let fmt f = Printf.sprintf "%.6f" f

let opt = function Some x -> fmt x | None -> ""

let table3_csv () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (csv_line
       [ "benchmark"; "hds_pct"; "halo_pct"; "block_pct"; "hot_pct"; "hdsv_pct";
         "hdshot_pct"; "best_pct"; "paper_hds_pct"; "paper_halo_pct"; "paper_best_pct" ]);
  List.iter
    (fun (r : Harness.result) ->
      let d p = Harness.time_delta r p in
      let best, _ = Harness.best_prefix r in
      let pp = Paper_data.find_table3 r.wl.name in
      Buffer.add_string buf
        (csv_line
           [ r.wl.name; fmt (d r.hds); fmt (d r.halo); fmt (d r.block);
             fmt (d r.prefix_hot); fmt (d r.prefix_hds); fmt (d r.prefix_hdshot);
             fmt (d best); opt pp.hds_pct; opt pp.halo_pct; fmt pp.best_pct ]))
    (Harness.run_all ());
  Buffer.contents buf

let miss_rates_csv () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (csv_line
       [ "benchmark"; "l1_base"; "l1_pfx"; "llc_base"; "llc_pfx"; "tlb2_base"; "tlb2_pfx";
         "stall_base"; "stall_pfx"; "writebacks_base"; "writebacks_pfx" ]);
  List.iter
    (fun (r : Harness.result) ->
      let best, _ = Harness.best_prefix r in
      let b = r.baseline.metrics and p = best.metrics in
      Buffer.add_string buf
        (csv_line
           [ r.wl.name; fmt b.M.l1_miss_rate; fmt p.M.l1_miss_rate; fmt b.M.llc_miss_rate;
             fmt p.M.llc_miss_rate; fmt b.M.l2_tlb_miss_rate; fmt p.M.l2_tlb_miss_rate;
             fmt b.M.backend_stall_pct; fmt p.M.backend_stall_pct;
             string_of_int b.M.counters.writebacks; string_of_int p.M.counters.writebacks ]))
    (Harness.run_all ());
  Buffer.contents buf

let capture_csv () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (csv_line
       [ "benchmark"; "policy"; "region_objects"; "region_hot"; "region_hds"; "calls_avoided";
         "peak_bytes" ]);
  List.iter
    (fun (r : Harness.result) ->
      List.iter
        (fun (label, (pr : Harness.policy_run)) ->
          let m = pr.metrics in
          Buffer.add_string buf
            (csv_line
               [ r.wl.name; label; string_of_int m.M.region_objects;
                 string_of_int m.M.region_hot_objects; string_of_int m.M.region_hds_objects;
                 string_of_int m.M.calls_avoided; string_of_int m.M.peak_bytes ]))
        [ ("baseline", r.baseline); ("hds", r.hds); ("halo", r.halo);
          ("block", r.block); ("prefix_hot", r.prefix_hot);
          ("prefix_hds", r.prefix_hds); ("prefix_hdshot", r.prefix_hdshot) ])
    (Harness.run_all ());
  Buffer.contents buf

let write_all dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
  in
  write "table3.csv" (table3_csv ());
  write "miss_rates.csv" (miss_rates_csv ());
  write "capture.csv" (capture_csv ());
  Printf.printf "wrote table3.csv, miss_rates.csv, capture.csv to %s/\n" dir
