(* Durable (checkpointed) benchmark runs.

   A durable run produces exactly the {!Harness.result} that
   [Harness.run_benchmark] would, but persists its progress under a
   checkpoint directory so a killed run resumes instead of restarting.
   Layout, one subdirectory per benchmark:

     DIR/<bench>/manifest            identity of the run (validated on resume)
     DIR/<bench>/stats.ckpt[.prev]   long-run statistics collector, mid-stream
     DIR/<bench>/stats.done          final statistics collector
     DIR/<bench>/class.done          long-run HDS classification (object ids)
     DIR/<bench>/policy-<name>.ckpt  executor session, mid-replay
     DIR/<bench>/policy-<name>.done  finished replay outcome

   Work that is cheap and deterministic — trace generation, profiling
   analysis, planning — is recomputed on every resume; only the
   long-run passes (statistics, classification, seven policy replays)
   checkpoint.  Stream-detection ([class]) has no mid-phase snapshot:
   interrupted, it restarts from the beginning of that phase.

   Checkpoints are taken at stream segment boundaries, every
   [every]-th segment.  Guardrails are checked at the same boundaries;
   a breach flushes a final checkpoint before propagating, so the next
   [resume] continues from the breach point. *)

module Workload = Prefix_workloads.Workload
module Stream = Prefix_trace.Stream
module Packed = Prefix_trace.Packed
module Trace_stats = Prefix_trace.Trace_stats
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Checkpoint = Prefix_runtime.Checkpoint
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Fsio = Prefix_util.Fsio

type t = {
  dir : string;  (* root checkpoint directory *)
  every : int;  (* checkpoint every N segments *)
  throttle_ms : float;  (* min wall-clock spacing between saves *)
  guardrails : Checkpoint.guardrails;
  jobs : int;
  scale : Workload.scale;  (* evaluation scale *)
  streaming : bool;
  segment_events : int option;
}

let default ~dir =
  { dir;
    every = 8;
    throttle_ms = Checkpoint.default_throttle_ms;
    guardrails = Checkpoint.no_guardrails;
    jobs = 1;
    scale = Workload.Long;
    streaming = false;
    segment_events = None }

let ( / ) = Filename.concat

(* ---- run identity --------------------------------------------------- *)

let scale_of_name s =
  List.find_opt
    (fun sc -> Workload.scale_name sc = s)
    [ Workload.Profiling; Workload.Long; Workload.Huge ]

let config_digest () =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (Harness.exec_config, Harness.effective_pipeline_config ())
          []))

let trace_digest profiling_trace =
  let buf = Buffer.create 4096 in
  Prefix_trace.Binfmt.write buf profiling_trace;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let meta_of cfg (wl : Workload.t) ~digest =
  [ ("bench", wl.name);
    ("scale", Workload.scale_name cfg.scale);
    ("seed", string_of_int Harness.seed);
    ("stream", string_of_bool cfg.streaming);
    ( "segment_events",
      string_of_int
        (Option.value ~default:Stream.default_segment_events cfg.segment_events) );
    ("jobs", string_of_int cfg.jobs);
    ("trace_digest", digest);
    ("config_digest", config_digest ()) ]

let manifest_path bdir = bdir / "manifest"

let write_or_check_manifest cfg (wl : Workload.t) ~digest bdir =
  let meta = meta_of cfg wl ~digest in
  let path = manifest_path bdir in
  if Sys.file_exists path then begin
    match Checkpoint.load_file path with
    | Error e -> failwith (path ^ ": " ^ e)
    | Ok (h, _) -> (
      match Checkpoint.check_meta h ~kind:"manifest" ~meta with
      | Ok () -> ()
      | Error e ->
        failwith
          (path ^ ": " ^ e
         ^ " (this checkpoint directory belongs to a different run)"))
  end
  else
    Checkpoint.save ~path
      { Checkpoint.kind = "manifest"; meta; event_index = 0 }
      ~payload:"";
  meta

(* ---- checkpointed phases -------------------------------------------- *)

(* Load a phase's .done container, validating identity.  A corrupt
   .done is indistinguishable from a torn final write: redo the phase. *)
let load_done ~path ~kind ~meta =
  if not (Sys.file_exists path) then None
  else
    match Checkpoint.load_file path with
    | Error _ -> None
    | Ok (h, payload) -> (
      match Checkpoint.check_meta h ~kind ~meta with
      | Ok () -> Some payload
      | Error e -> failwith (path ^ ": " ^ e))

let save_done ~path ~kind ~meta ~event_index payload =
  Checkpoint.save ~path { Checkpoint.kind; meta; event_index } ~payload

(* Resume point of an interrupted phase: the newest loadable snapshot
   (current, else .prev), or nothing — then the phase restarts.  A
   snapshot that loads but belongs to another run is refused loudly. *)
let load_snapshot ~path ~kind ~meta =
  if
    (not (Sys.file_exists path))
    && not (Sys.file_exists (Checkpoint.prev_path path))
  then None
  else
    match Checkpoint.load ~path with
    | Error _ -> None (* both copies torn: restart the phase *)
    | Ok (h, payload, _which) -> (
      match Checkpoint.check_meta h ~kind ~meta with
      | Ok () -> Some (h.Checkpoint.event_index, payload)
      | Error e -> failwith (path ^ ": " ^ e))

let misaligned ~path ~start ~base ~len =
  failwith
    (Printf.sprintf
       "%s: checkpoint at event %d is not on a segment boundary (segment \
        %d..%d); was --segment-events changed?"
       path start base (base + len))

(* Fold a stream through [feed], skipping the [start] events already
   covered by a snapshot, checkpointing via [save] every [every]-th
   replayed segment — but at most once per [throttle_ms] of wall clock,
   which bounds checkpointing overhead whatever the segment size — and
   unconditionally on guardrail breach. *)
let segments_durable cfg ~mon ~start ~save ~path stream feed =
  let segs = ref 0 in
  let now_ms () = Int64.to_float (Prefix_obs.Clock.now_ns ()) /. 1e6 in
  let last_save = ref (now_ms ()) in
  Stream.iter_segments stream (fun ~base seg ->
      let len = Packed.length seg in
      if base + len <= start then ()
      else if base < start then misaligned ~path ~start ~base ~len
      else begin
        feed ~base seg;
        incr segs;
        (try Checkpoint.check mon
         with Checkpoint.Breach _ as e ->
           save ();
           raise e);
        if !segs mod cfg.every = 0 && now_ms () -. !last_save >= cfg.throttle_ms
        then begin
          save ();
          last_save := now_ms ()
        end
      end)

(* Long-run statistics via the online collector. *)
let durable_stats cfg ~mon ~meta bdir mk_stream =
  let done_path = bdir / "stats.done" in
  let ckpt_path = bdir / "stats.ckpt" in
  let finish payload =
    match (Marshal.from_string payload 0 : Trace_stats.collector) with
    | c -> Trace_stats.finish c
    | exception (Failure msg | Invalid_argument msg) ->
      failwith (done_path ^ ": stats snapshot does not match this binary: " ^ msg)
  in
  match load_done ~path:done_path ~kind:"stats" ~meta with
  | Some payload -> finish payload
  | None ->
    let c, start =
      match load_snapshot ~path:ckpt_path ~kind:"stats" ~meta with
      | None -> (Trace_stats.collector (), 0)
      | Some (ev, payload) -> (
        match (Marshal.from_string payload 0 : Trace_stats.collector) with
        | c -> (c, ev)
        | exception (Failure _ | Invalid_argument _) ->
          (Trace_stats.collector (), 0))
    in
    let save () =
      Checkpoint.save ~path:ckpt_path
        { Checkpoint.kind = "stats"; meta; event_index = Trace_stats.events_fed c }
        ~payload:(Marshal.to_string c [])
    in
    segments_durable cfg ~mon ~start ~save ~path:ckpt_path
      (mk_stream ()) (fun ~base seg -> Trace_stats.feed c ~base seg);
    save_done ~path:done_path ~kind:"stats" ~meta
      ~event_index:(Trace_stats.events_fed c)
      (Marshal.to_string c []);
    Trace_stats.finish c

(* Long-run HDS classification.  [Detector.detect_stream] has no
   incremental snapshot: the phase restarts if interrupted. *)
let durable_class ~mon ~meta bdir long_stats mk_stream =
  let done_path = bdir / "class.done" in
  match load_done ~path:done_path ~kind:"class" ~meta with
  | Some payload -> (
    match (Marshal.from_string payload 0 : int list) with
    | ids -> ids
    | exception (Failure msg | Invalid_argument msg) ->
      failwith (done_path ^ ": " ^ msg))
  | None ->
    Checkpoint.check mon;
    let ohds =
      Detector.detect_stream ~config:Harness.pipeline_config.detector long_stats
        (mk_stream ())
    in
    let ids = List.concat_map Hds.objs ohds in
    Checkpoint.check mon;
    save_done ~path:done_path ~kind:"class" ~meta
      ~event_index:(Trace_stats.trace_length long_stats)
      (Marshal.to_string ids []);
    ids

(* One policy replay as a durable session. *)
let durable_replay cfg ~mon ~meta bdir ~name ~policy mk_stream =
  let done_path = bdir / ("policy-" ^ name ^ ".done") in
  let ckpt_path = bdir / ("policy-" ^ name ^ ".ckpt") in
  let outcome_of payload =
    match (Marshal.from_string payload 0 : Executor.outcome) with
    | o -> o
    | exception (Failure msg | Invalid_argument msg) ->
      failwith (done_path ^ ": outcome snapshot does not match this binary: " ^ msg)
  in
  match load_done ~path:done_path ~kind:"outcome" ~meta with
  | Some payload -> outcome_of payload
  | None ->
    let session, start =
      match load_snapshot ~path:ckpt_path ~kind:"session" ~meta with
      | Some (ev, payload) -> (
        match Executor.session_deserialize payload with
        | Ok st -> (st, ev)
        | Error e -> failwith (ckpt_path ^ ": " ^ e))
      | None ->
        let heap = Prefix_heap.Allocator.create () in
        let p = policy heap in
        ( Executor.session_create ~config:Harness.exec_config ~mode:Policy.Strict
            ~heatmap_objs:None ~attribute:false ~heap ~p,
          0 )
    in
    let save () =
      Checkpoint.save ~path:ckpt_path
        { Checkpoint.kind = "session";
          meta;
          event_index = Executor.session_events session }
        ~payload:(Executor.session_serialize session)
    in
    segments_durable cfg ~mon ~start ~save ~path:ckpt_path
      (mk_stream ()) (fun ~base seg -> Executor.replay_segment session ~base seg);
    let outcome = Executor.session_finish session in
    save_done ~path:done_path ~kind:"outcome" ~meta
      ~event_index:(Executor.session_events session)
      (Marshal.to_string outcome []);
    Prefix_obs.Recorder.poll ~label:("durable:" ^ name) ();
    outcome

(* ---- the durable benchmark run -------------------------------------- *)

let run_benchmark cfg (wl : Workload.t) : Harness.result =
  let bdir = cfg.dir / wl.name in
  Fsio.mkdir_p bdir;
  let mon = Checkpoint.start cfg.guardrails in
  let profiling_trace = wl.generate ~scale:Workload.Profiling ~seed:Harness.seed () in
  let digest = trace_digest profiling_trace in
  let meta = write_or_check_manifest cfg wl ~digest bdir in
  let long_source =
    if cfg.streaming then
      Harness.Streamed
        (fun () ->
          Workload.generate_stream wl ~scale:cfg.scale ~seed:(Harness.seed + 1)
            ?segment_events:cfg.segment_events ())
    else
      Harness.Materialized
        (Packed.of_trace (wl.generate ~scale:cfg.scale ~seed:(Harness.seed + 1) ()))
  in
  let mk_stream () =
    match long_source with
    | Harness.Materialized p ->
      Stream.of_packed ?segment_events:cfg.segment_events p
    | Harness.Streamed mk -> mk ()
  in
  let profiling_stats = Pipeline.analyze profiling_trace in
  let long_stats = durable_stats cfg ~mon ~meta bdir mk_stream in
  let long_events = Trace_stats.trace_length long_stats in
  let long_hot_set = Hashtbl.create 1024 in
  List.iter
    (fun (o : Trace_stats.obj_info) -> Hashtbl.replace long_hot_set o.obj ())
    (Trace_stats.hot_objects ~coverage:Harness.pipeline_config.coverage long_stats);
  let long_hds_set = Hashtbl.create 1024 in
  List.iter
    (fun o -> Hashtbl.replace long_hds_set o ())
    (durable_class ~mon ~meta bdir long_stats mk_stream);
  let cls =
    { Policy.is_hot = Hashtbl.mem long_hot_set; is_hds = Hashtbl.mem long_hds_set }
  in
  let costs = Harness.exec_config.costs in
  let plan_of variant =
    Pipeline.plan_with_stats
      ~config:(Harness.effective_pipeline_config ())
      ~variant profiling_stats profiling_trace
  in
  let plan_hot = plan_of Plan.Hot in
  let plan_hds = plan_of Plan.Hds in
  let plan_hdshot = plan_of Plan.HdsHot in
  let hds_plan =
    Prefix_runtime.Hds_policy.plan_of_trace
      ~detector:Harness.pipeline_config.detector profiling_stats profiling_trace
  in
  let halo_plan = Prefix_halo.Halo.plan_of_trace profiling_stats profiling_trace in
  let block_plan = Prefix_runtime.Block_policy.plan_of_trace profiling_trace in
  let replay name policy plan =
    let o = durable_replay cfg ~mon ~meta bdir ~name ~policy mk_stream in
    { Harness.metrics = o.Executor.metrics; plan }
  in
  let baseline =
    replay "baseline" (fun heap -> Policy.baseline costs heap) None
  in
  let hds =
    replay "hds"
      (fun heap -> Prefix_runtime.Hds_policy.policy costs heap hds_plan cls)
      None
  in
  let halo =
    replay "halo"
      (fun heap -> Prefix_runtime.Halo_policy.policy costs heap halo_plan cls)
      None
  in
  let block =
    replay "block"
      (fun heap -> Prefix_runtime.Block_policy.policy costs heap block_plan cls)
      None
  in
  let prefix_run name plan =
    replay name
      (fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan cls)
      (Some plan)
  in
  let prefix_hot = prefix_run "prefix_hot" plan_hot in
  let prefix_hds = prefix_run "prefix_hds" plan_hds in
  let prefix_hdshot = prefix_run "prefix_hdshot" plan_hdshot in
  { Harness.wl;
    profiling_trace;
    long_source;
    long_events;
    profiling_stats;
    long_stats;
    baseline;
    hds;
    halo;
    block;
    prefix_hot;
    prefix_hds;
    prefix_hdshot;
    long_hot_set;
    long_hds_set }

let run_many cfg names =
  let benches = List.map Prefix_workloads.Registry.find names in
  if cfg.jobs <= 1 || List.length benches <= 1 then
    List.map (run_benchmark cfg) benches
  else
    Prefix_parallel.Pool.with_pool ~jobs:cfg.jobs (fun pool ->
        Prefix_parallel.Pool.map pool (run_benchmark cfg) benches)

(* ---- resume --------------------------------------------------------- *)

(* A checkpoint directory records everything needed to finish the run:
   resume reconstructs the configuration from each manifest. *)
let read_manifest path =
  match Checkpoint.load_file path with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok (h, _) ->
    if h.Checkpoint.kind <> "manifest" then
      Error (path ^ ": not a manifest (kind " ^ h.Checkpoint.kind ^ ")")
    else Ok h.Checkpoint.meta

let bench_dirs dir =
  match Sys.readdir dir with
  | exception Sys_error e -> failwith e
  | entries ->
    Array.to_list entries
    |> List.filter (fun e ->
           Sys.is_directory (dir / e)
           && Sys.file_exists (manifest_path (dir / e)))
    |> List.sort compare

let cfg_of_manifest ~dir ~every ~guardrails meta =
  let get k =
    match List.assoc_opt k meta with
    | Some v -> v
    | None -> failwith (Printf.sprintf "manifest is missing field %S" k)
  in
  let scale =
    match scale_of_name (get "scale") with
    | Some s -> s
    | None -> failwith ("manifest has unknown scale " ^ get "scale")
  in
  ( get "bench",
    { dir;
      every;
      throttle_ms = Checkpoint.default_throttle_ms;
      guardrails;
      jobs = int_of_string (get "jobs");
      scale;
      streaming = bool_of_string (get "stream");
      segment_events = Some (int_of_string (get "segment_events")) } )

let resume ~dir ~every ~guardrails =
  match bench_dirs dir with
  | [] -> failwith (dir ^ ": no benchmark checkpoints found")
  | benches ->
    let runs =
      List.map
        (fun b ->
          match read_manifest (manifest_path (dir / b)) with
          | Error e -> failwith e
          | Ok meta -> cfg_of_manifest ~dir ~every ~guardrails meta)
        benches
    in
    (* All manifests in one directory share jobs/scale/mode. *)
    let _, cfg0 = List.hd runs in
    let names = List.map fst runs in
    (names, run_many cfg0 names)

(* Cheap validation: check every container's magic, CRCs and identity
   without deserializing payload state or replaying anything. *)
let check ~dir =
  let buf = Buffer.create 256 in
  let bad = ref 0 in
  let benches = bench_dirs dir in
  if benches = [] then Error (dir ^ ": no benchmark checkpoints found")
  else begin
    List.iter
      (fun b ->
        let bdir = dir / b in
        (match read_manifest (manifest_path bdir) with
        | Error e ->
          incr bad;
          Buffer.add_string buf (Printf.sprintf "BAD  %s\n" e)
        | Ok _ -> Buffer.add_string buf (Printf.sprintf "ok   %s/manifest\n" b));
        Array.iter
          (fun f ->
            if
              Filename.check_suffix f ".ckpt"
              || Filename.check_suffix f ".done"
              || Filename.check_suffix f ".prev"
            then
              match Checkpoint.validate ~path:(bdir / f) with
              | Ok h ->
                Buffer.add_string buf
                  (Printf.sprintf "ok   %s/%s (%s @ event %d)\n" b f
                     h.Checkpoint.kind h.Checkpoint.event_index)
              | Error e ->
                incr bad;
                Buffer.add_string buf (Printf.sprintf "BAD  %s/%s: %s\n" b f e))
          (Sys.readdir bdir))
      benches;
    if !bad = 0 then Ok (Buffer.contents buf)
    else Error (Buffer.contents buf)
  end

(* ---- report rendering ----------------------------------------------- *)

(* The exact text `prefix run` prints; shared so an uninterrupted run, a
   resumed run and the crash campaign's children can be compared
   byte-for-byte. *)
let render (r : Harness.result) =
  let module M = Prefix_runtime.Metrics in
  let buf = Buffer.create 512 in
  let line label (pr : Harness.policy_run) =
    Buffer.add_string buf
      (Printf.sprintf
         "%-14s %12.0f cycles  %+7.2f%%  L1 %5.2f%%  LLC %7.4f%%  peak %s B\n"
         label pr.metrics.M.cycles.total_cycles
         (Harness.time_delta r pr)
         (100. *. pr.metrics.M.l1_miss_rate)
         (100. *. pr.metrics.M.llc_miss_rate)
         (Prefix_util.Tablefmt.fmt_int pr.metrics.M.peak_bytes))
  in
  line "baseline" r.baseline;
  line "HDS [8]" r.hds;
  line "HALO" r.halo;
  line "Block" r.block;
  line "PreFix:Hot" r.prefix_hot;
  line "PreFix:HDS" r.prefix_hds;
  line "PreFix:HDS+Hot" r.prefix_hdshot;
  Buffer.contents buf
