(* Table 5: PreFix object capture, profiling vs long run — the fraction
   of heap accesses covered by preallocated objects (HA), the number of
   hot objects captured, and how many belong to streams.  The profiling
   side comes from the plan; the long-run side from the best PreFix
   policy's region accounting. *)

module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics
module Trace_stats = Prefix_trace.Trace_stats

let title = "Table 5: PreFix capture, profiling vs long run (measured | paper)"

let report () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "prof HA%"; "prof Hot"; "prof HDS"; "long HA%"; "long Hot"; "long HDS";
          "paper prof (HA/Hot/HDS)"; "paper long (HA/Hot/HDS)" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      let best, _ = Harness.best_prefix r in
      let plan = Option.get best.plan in
      let p = Paper_data.find_table5 r.wl.name in
      (* Long-run HA: accesses to objects the policy actually captured.
         We approximate with the region's hot-object share of long-run
         accesses via the captured counts and stats. *)
      let m = best.metrics in
      let long_refs = Trace_stats.total_heap_accesses r.long_stats in
      (* Heap accesses to captured objects: every captured object is
         tracked by region accounting; use hot-set share scaled by the
         captured fraction of hot objects. *)
      let long_hot_total = Hashtbl.length r.long_hot_set in
      let capture_ratio =
        if long_hot_total = 0 then 0.
        else float_of_int m.M.region_hot_objects /. float_of_int long_hot_total
      in
      let hot_share =
        Trace_stats.heap_access_share r.long_stats
          (Hashtbl.fold (fun o () acc -> o :: acc) r.long_hot_set [])
      in
      let long_ha = 100. *. hot_share *. min 1.0 capture_ratio in
      ignore long_refs;
      T.add_row t
        [ r.wl.name;
          T.fmt_f (100. *. plan.profile.heap_access_share);
          T.fmt_int plan.profile.hot_count;
          T.fmt_int plan.profile.hds_count;
          T.fmt_f long_ha;
          T.fmt_int m.M.region_hot_objects;
          T.fmt_int m.M.region_hds_objects;
          Printf.sprintf "%.1f / %s / %s" p.prof_ha (T.fmt_int p.prof_hot) (T.fmt_int p.prof_hds);
          Printf.sprintf "%.1f / %s / %s" p.long_ha (T.fmt_int p.long_hot) (T.fmt_int p.long_hds) ])
    (Harness.run_all ());
  title ^ "\n" ^ T.render t
