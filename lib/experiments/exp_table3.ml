(* Table 3: execution-time changes of HDS, HALO and the three PreFix
   versions relative to the baseline.  "Time" is the cycle estimate of
   the analytic model over the simulated cache hierarchy (see
   DESIGN.md); the paper's wall-clock seconds appear alongside for
   comparison of shape. *)

module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics

let title = "Table 3: relative execution-time changes (measured | paper)"

let cell measured paper =
  let p = match paper with Some x -> Printf.sprintf "%+.1f" x | None -> "na" in
  Printf.sprintf "%+.1f | %s" measured p

let report () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "base Mcycles"; "mem refs"; "HDS [8] %"; "HALO %"; "PFX:Hot %";
          "PFX:HDS %"; "PFX:HDS+Hot %"; "best %" ]
  in
  let m_best = ref [] and p_best = ref [] in
  let m_hds = ref [] and p_hds = ref [] in
  List.iter
    (fun (r : Harness.result) ->
      let d p = Harness.time_delta r p in
      let pp = Paper_data.find_table3 r.wl.name in
      let best, _ = Harness.best_prefix r in
      m_best := d best :: !m_best;
      p_best := pp.best_pct :: !p_best;
      (match pp.hds_pct with
      | Some x ->
        m_hds := d r.hds :: !m_hds;
        p_hds := x :: !p_hds
      | None -> ());
      T.add_row t
        [ r.wl.name;
          T.fmt_f (r.baseline.metrics.M.cycles.total_cycles /. 1e6);
          T.fmt_int r.baseline.metrics.M.mem_refs;
          cell (d r.hds) pp.hds_pct;
          cell (d r.halo) pp.halo_pct;
          cell (d r.prefix_hot) (Some pp.hot_pct);
          cell (d r.prefix_hds) pp.hds_v_pct;
          cell (d r.prefix_hdshot) pp.hdshot_pct;
          cell (d best) (Some pp.best_pct) ])
    (Harness.run_all ());
  T.add_sep t;
  let mean l = Prefix_util.Stats.mean l in
  T.add_row t
    [ "mean"; ""; ""; cell (mean !m_hds) (Some (mean !p_hds)); ""; ""; ""; "";
      cell (mean !m_best) (Some (mean !p_best)) ];
  let chart =
    Prefix_util.Barchart.create ~unit_label:"%"
      ~title:"best PreFix vs baseline (a = measured, b = paper)" ()
  in
  List.iter
    (fun (r : Harness.result) ->
      let best, _ = Harness.best_prefix r in
      let pp = Paper_data.find_table3 r.wl.name in
      Prefix_util.Barchart.add_pair chart ~label:r.wl.name (Harness.time_delta r best)
        pp.best_pct)
    (Harness.run_all ());
  title ^ "\n" ^ T.render t ^ Prefix_util.Barchart.render chart
