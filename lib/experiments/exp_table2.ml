(* Table 2: context used per benchmark — id pattern kinds, instrumented
   site count and counter count, from the PreFix:HDS+Hot plan. *)

module T = Prefix_util.Tablefmt
module Plan = Prefix_core.Plan

let title = "Table 2: context used (measured vs paper)"

let report () =
  let t =
    T.create
      ~headers:[ "benchmark"; "type"; "#sites"; "#counters"; "paper type"; "(sites,counters)" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      match r.prefix_hdshot.plan with
      | None -> ()
      | Some plan ->
        let p = Paper_data.find_table2 r.wl.name in
        T.add_row t
          [ r.wl.name;
            Plan.context_kinds plan;
            string_of_int (Plan.num_sites plan);
            string_of_int (Plan.num_counters plan);
            p.kinds;
            Printf.sprintf "(%d, %d)" p.sites p.counters ])
    (Harness.run_all ());
  title ^ "\n" ^ T.render t
