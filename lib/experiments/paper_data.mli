(** Paper-reported numbers, embedded so every harness can print
    paper-vs-measured side by side (and EXPERIMENTS.md can record the
    comparison).  All values are transcribed from the CGO'25 paper. *)

type table3_row = {
  name : string;
  baseline_s : float;  (** baseline execution time, seconds *)
  mem_refs : string;  (** as printed in the paper, e.g. "13.3 billion" *)
  hds_pct : float option;  (** HDS [8] time change, % *)
  halo_pct : float option;  (** HALO, % ([None] = "na") *)
  hot_pct : float;
  hds_v_pct : float option;  (** PreFix:HDS ([None] = merged cell) *)
  hdshot_pct : float option;
  best_pct : float;
}

val table3 : table3_row list

type table2_row = { name : string; kinds : string; sites : int; counters : int }

val table2 : table2_row list

type table4_row = {
  name : string;
  hds_hot : int;
  hds_all : int;
  halo_hot : int option;
  halo_all : int option;
}

val table4 : table4_row list

type table5_row = {
  name : string;
  prof_ha : float;
  prof_hot : int;
  prof_hds : int;
  long_ha : float;
  long_hot : int;
  long_hds : int;
}

val table5 : table5_row list

type table6_row = {
  name : string;
  calls_avoided : int;
  instr_pct : float;
  peak_before_mb : float;
  peak_after_mb : float;
}

val table6 : table6_row list

type fig1_row = { name : string; heap_pct : float; hot_pct : float; hot_objs : int }

val fig1 : fig1_row list
(** Approximate reads of Figure 1's bars: % of memory accesses from all
    heap objects and from hot heap objects, and the dynamic hot-object
    count printed in the bar (= Table 5 profiling Hot). *)

val fig10_mysql : (int * float) list
(** (threads, improvement %) for mysql, Figure 10 (positive = faster). *)

val fig10_mcf : (int * float) list

val find_table3 : string -> table3_row
val find_table2 : string -> table2_row
val find_table4 : string -> table4_row
val find_table5 : string -> table5_row
val find_table6 : string -> table6_row

val benchmarks : string list
(** The 13 names, in paper order. *)
