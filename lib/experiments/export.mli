(** CSV export of the headline results for plotting outside the
    repository. *)

val table3_csv : unit -> string
(** Per-benchmark time deltas for every policy, with paper values. *)

val miss_rates_csv : unit -> string
(** L1/LLC/TLB rates, backend stalls and write-backs, baseline vs best
    PreFix. *)

val capture_csv : unit -> string
(** Region capture / pollution and peak-memory accounting per policy. *)

val write_all : string -> unit
(** Write all three files into the directory (created if missing). *)
