(* Figures 11, 12 and 13: change in L1 miss rate, LLC miss rate (misses
   over all references, log scale in the paper) and backend-stall
   percentage between the baseline and the best PreFix version. *)

module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics

let title =
  "Figures 11-13: L1 / LLC miss rates and backend stalls, baseline vs best PreFix"

let report () =
  let t =
    T.create
      ~headers:
        [ "benchmark"; "L1 base%"; "L1 pfx%"; "LLC base%"; "LLC pfx%"; "stall base%";
          "stall pfx%" ]
  in
  List.iter
    (fun (r : Harness.result) ->
      let best, _ = Harness.best_prefix r in
      let b = r.baseline.metrics and p = best.metrics in
      T.add_row t
        [ r.wl.name;
          T.fmt_f (100. *. b.M.l1_miss_rate);
          T.fmt_f (100. *. p.M.l1_miss_rate);
          T.fmt_f ~dec:4 (100. *. b.M.llc_miss_rate);
          T.fmt_f ~dec:4 (100. *. p.M.llc_miss_rate);
          T.fmt_f b.M.backend_stall_pct;
          T.fmt_f p.M.backend_stall_pct ])
    (Harness.run_all ());
  let tlb = Buffer.create 256 in
  (* The paper calls out the TLB improvements of health and analyzer. *)
  List.iter
    (fun name ->
      let r = Harness.find name in
      let best, _ = Harness.best_prefix r in
      Buffer.add_string tlb
        (Printf.sprintf "%s dTLB(L2) miss rate: %.3f%% -> %.3f%% (paper: %s)\n" name
           (100. *. r.baseline.metrics.M.l2_tlb_miss_rate)
           (100. *. best.metrics.M.l2_tlb_miss_rate)
           (if name = "health" then "10% -> 0.1%" else "0.62% -> 0%")))
    [ "health"; "analyzer" ];
  title ^ "\n" ^ T.render t ^ Buffer.contents tlb
