(* Figure 10: effect of multithreading.  mysql and mcf are traced once
   (default thread count), optimized with their best configuration, and
   then run with varying thread counts; we report the improvement of the
   optimized run over the baseline at the same thread count. *)

module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Prefix_policy = Prefix_runtime.Prefix_policy
module Pipeline = Prefix_core.Pipeline
module Trace_stats = Prefix_trace.Trace_stats
module T = Prefix_util.Tablefmt
module M = Prefix_runtime.Metrics

let title = "Figure 10: multithreaded speedups (positive = faster than baseline)"

let thread_counts = [ 2; 4; 8; 16 ]

let series name =
  let wl = Prefix_workloads.Registry.find name in
  (* Profile once, single-threaded (as the paper: traces collected once
     with default thread count). *)
  let prof = wl.generate ~scale:Profiling ~seed:Harness.seed () in
  let prof_stats = Trace_stats.analyze prof in
  let plan =
    Pipeline.plan_with_stats ~config:Harness.pipeline_config ~variant:Prefix_core.Plan.Hot
      prof_stats prof
  in
  let costs = Harness.exec_config.costs in
  List.map
    (fun k ->
      let trace = wl.generate ~threads:k ~scale:Long ~seed:(Harness.seed + 1) () in
      let base =
        Executor.run ~config:Harness.exec_config
          ~policy:(fun heap -> Policy.baseline costs heap)
          trace
      in
      let opt =
        Executor.run ~config:Harness.exec_config
          ~policy:(fun heap ->
            Prefix_policy.policy costs heap plan Policy.no_classification)
          trace
      in
      let impr =
        -.M.time_pct_change ~baseline:base.metrics opt.metrics
      in
      (k, impr))
    thread_counts

let report () =
  let t = T.create ~headers:[ "benchmark"; "threads"; "improvement %"; "paper %" ] in
  List.iter
    (fun (name, paper) ->
      let s = series name in
      List.iter
        (fun (k, impr) ->
          let p = List.assoc_opt k paper in
          T.add_row t
            [ name;
              string_of_int k;
              T.fmt_pct impr;
              (match p with Some x -> T.fmt_pct x | None -> "-") ])
        s)
    [ ("mysql", Paper_data.fig10_mysql); ("mcf", Paper_data.fig10_mcf) ];
  title ^ "\n" ^ T.render t
