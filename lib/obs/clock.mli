(** Monotonic time source.

    Wall-clock time ([Unix.gettimeofday]) can jump backwards under NTP
    adjustment, which would produce negative span durations; all span
    timing therefore goes through the CLOCK_MONOTONIC stub that ships
    with bechamel (the same clock the micro-benchmarks use). *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary (but fixed) origin.  Guaranteed
    non-decreasing process-wide (across domains): readings are clamped
    against a shared high-water mark, so even a misbehaving underlying
    clock cannot yield negative span durations or out-of-order
    time-series samples. *)

val us_of_ns : int64 -> float
(** Microseconds as a float — the unit of Chrome trace-event [ts]/[dur]
    fields. *)

val ms_of_ns : int64 -> float
