(** Monotonic time source.

    Wall-clock time ([Unix.gettimeofday]) can jump backwards under NTP
    adjustment, which would produce negative span durations; all span
    timing therefore goes through the CLOCK_MONOTONIC stub that ships
    with bechamel (the same clock the micro-benchmarks use). *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary (but fixed) origin; never decreases
    within a process. *)

val us_of_ns : int64 -> float
(** Microseconds as a float — the unit of Chrome trace-event [ts]/[dur]
    fields. *)

val ms_of_ns : int64 -> float
