type kind = Cum | Inst

type row = {
  r_ts_ns : int64;
  r_ev : int;
  r_label : string;
  r_values : float array;
}

type t = {
  cap : int;
  mutable names : string array;  (* column i -> name *)
  mutable kinds : kind array;
  mutable n_cols : int;
  index : (string, int) Hashtbl.t;
  rows : row option array;  (* slots [0, n_rows) are Some, oldest first *)
  fills : int array;  (* raw samples accumulated in each slot *)
  mutable n_rows : int;
  (* raw samples a full slot represents; doubles on every coarsening
     so new samples keep accumulating at the coarsened resolution
     instead of re-coarsening the whole ring each refill *)
  mutable gran : int;
  mutable n_coarsenings : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Timeseries.create: capacity < 1";
  let cap = max 8 capacity in
  { cap;
    names = Array.make 16 "";
    kinds = Array.make 16 Inst;
    n_cols = 0;
    index = Hashtbl.create 16;
    rows = Array.make cap None;
    fills = Array.make cap 0;
    n_rows = 0;
    gran = 1;
    n_coarsenings = 0 }

let capacity t = t.cap
let length t = t.n_rows
let coarsenings t = t.n_coarsenings

let add_column t ~name kind =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None ->
    if t.n_cols >= Array.length t.names then begin
      let ncap = 2 * Array.length t.names in
      let grow a fill =
        let b = Array.make ncap fill in
        Array.blit a 0 b 0 t.n_cols;
        b
      in
      t.names <- grow t.names "";
      t.kinds <- grow t.kinds Inst
    end;
    let i = t.n_cols in
    t.names.(i) <- name;
    t.kinds.(i) <- kind;
    t.n_cols <- i + 1;
    Hashtbl.replace t.index name i;
    i

let find_column t name = Hashtbl.find_opt t.index name

let columns t = Array.init t.n_cols (fun i -> (t.names.(i), t.kinds.(i)))

(* Merge [a] (earlier, weight [wa] raw samples) and [b] (later, weight
   [wb]) into one row at the later row's position in time.  Widths may
   differ when the schema grew between the two samples. *)
let merge_rows t ~wa ~wb a b =
  let width = max (Array.length a.r_values) (Array.length b.r_values) in
  let get r i = if i < Array.length r.r_values then r.r_values.(i) else nan in
  let fa = float_of_int wa and fb = float_of_int wb in
  let values =
    Array.init width (fun i ->
        let x = get a i and y = get b i in
        if Float.is_nan x then y
        else if Float.is_nan y then x
        else
          match t.kinds.(i) with
          | Cum -> y  (* later cumulative value subsumes the earlier *)
          | Inst -> ((x *. fa) +. (y *. fb)) /. (fa +. fb))
  in
  { r_ts_ns = b.r_ts_ns; r_ev = b.r_ev; r_label = b.r_label; r_values = values }

(* Halve the resolution in place: pairwise-merge rows oldest-first (an
   odd trailing row is kept as is) and double the granularity so
   subsequent samples accumulate into the tail slot instead of forcing
   another full coarsening as soon as the ring refills. *)
let coarsen t =
  let n = t.n_rows in
  let out = ref 0 in
  let i = ref 0 in
  while !i < n do
    (match (t.rows.(!i), if !i + 1 < n then t.rows.(!i + 1) else None) with
    | Some a, Some b ->
      let wa = t.fills.(!i) and wb = t.fills.(!i + 1) in
      t.rows.(!out) <- Some (merge_rows t ~wa ~wb a b);
      t.fills.(!out) <- wa + wb
    | Some a, None ->
      t.rows.(!out) <- Some a;
      t.fills.(!out) <- t.fills.(!i)
    | None, _ -> assert false);
    i := !i + 2;
    incr out
  done;
  for k = !out to n - 1 do
    t.rows.(k) <- None;
    t.fills.(k) <- 0
  done;
  t.n_rows <- !out;
  t.gran <- 2 * t.gran;
  t.n_coarsenings <- t.n_coarsenings + 1

let append t ~ts_ns ~ev ~label values =
  if Array.length values <> t.n_cols then
    invalid_arg
      (Printf.sprintf "Timeseries.append: %d values for %d columns"
         (Array.length values) t.n_cols);
  let fresh = { r_ts_ns = ts_ns; r_ev = ev; r_label = label; r_values = values } in
  let tail = t.n_rows - 1 in
  if t.n_rows > 0 && t.fills.(tail) < t.gran then begin
    (* tail slot still has room at the current granularity *)
    match t.rows.(tail) with
    | Some a ->
      t.rows.(tail) <- Some (merge_rows t ~wa:t.fills.(tail) ~wb:1 a fresh);
      t.fills.(tail) <- t.fills.(tail) + 1
    | None -> assert false
  end
  else begin
    if t.n_rows >= t.cap then coarsen t;
    t.rows.(t.n_rows) <- Some fresh;
    t.fills.(t.n_rows) <- 1;
    t.n_rows <- t.n_rows + 1
  end

let pad t r =
  if Array.length r.r_values = t.n_cols then r
  else begin
    let values = Array.make t.n_cols nan in
    Array.blit r.r_values 0 values 0 (Array.length r.r_values);
    { r with r_values = values }
  end

let rows t =
  List.init t.n_rows (fun i ->
      match t.rows.(i) with Some r -> pad t r | None -> assert false)

let last t = if t.n_rows = 0 then None else Option.map (pad t) t.rows.(t.n_rows - 1)

let fills t = List.init t.n_rows (fun i -> t.fills.(i))

let clear t =
  Array.fill t.rows 0 t.cap None;
  Array.fill t.fills 0 t.cap 0;
  t.n_rows <- 0;
  t.gran <- 1;
  t.n_coarsenings <- 0
