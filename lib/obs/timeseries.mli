(** Bounded time-series store (the flight recorder's backing ring).

    Holds at most [capacity] slots ("rows").  Appending to a full
    store {e coarsens} instead of dropping: adjacent row pairs are
    merged in place, halving the resolution and doubling the
    granularity (raw samples per slot), after which new samples keep
    accumulating into the tail slot at the coarsened rate — so memory
    stays fixed however long a replay runs, every slot covers an equal
    span of samples, and the timeline always spans the whole run.

    Columns are typed by how they coarsen:
    - {!Cum} — cumulative counters; merging two rows keeps the later
      value (the later row already includes the earlier one).
    - {!Inst} — instantaneous gauges; merging takes the sample-count
      weighted average.

    The schema may grow while samples exist (a late-registered metric
    becomes a new column); earlier rows read back [nan] for columns
    that did not exist when they were recorded.

    Not internally synchronized — the {!Recorder} serializes access. *)

type kind = Cum | Inst

type row = {
  r_ts_ns : int64;  (** monotonic timestamp of the (latest merged) sample *)
  r_ev : int;  (** event index the sample was taken at (0 outside replays) *)
  r_label : string;  (** free-form context, e.g. the replaying policy *)
  r_values : float array;  (** one slot per column; [nan] = not recorded *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 rows; minimum 8.  Raises [Invalid_argument]
    when [capacity < 1]. *)

val capacity : t -> int
val length : t -> int

val add_column : t -> name:string -> kind -> int
(** Index of the (existing or newly created) column named [name].
    An existing column's kind wins over the argument. *)

val find_column : t -> string -> int option
val columns : t -> (string * kind) array
(** In registration order; a column's index is stable for the life of
    the store. *)

val append : t -> ts_ns:int64 -> ev:int -> label:string -> float array -> unit
(** [values] must be exactly [Array.length (columns t)] wide (pad
    missing slots with [nan]); raises [Invalid_argument] otherwise.
    Merges into the tail slot while it has room at the current
    granularity; coarsens first when a new slot is needed and the
    store is full. *)

val rows : t -> row list
(** Oldest first; [r_values] padded to the current schema width. *)

val last : t -> row option

val fills : t -> int list
(** Raw samples accumulated in each slot, oldest first (parallel to
    {!rows}).  Coarsening merges slots but conserves the total: the
    sum always equals the number of {!append}s since creation /
    {!clear}. *)

val coarsenings : t -> int
(** How many times the history has been halved (0 = full rate). *)

val clear : t -> unit
(** Drop all rows; the schema is kept. *)
