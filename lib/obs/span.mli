(** Hierarchical timing spans with a thread-safe in-memory sink.

    A span measures one region of code on one thread.  Spans opened
    while another span is open on the same thread become its children;
    {!with_} enforces stack discipline (a child always closes before
    its parent, even on exceptions), so the completed records always
    describe a well-formed forest per thread.

    Collection is governed by {!Control}: when off, [with_] runs its
    body directly and records nothing. *)

type completed = {
  name : string;
  cat : string;  (** coarse subsystem: "pipeline", "executor", "harness" *)
  tid : int;  (** OS thread id (dense per-process) *)
  start_ns : int64;
  dur_ns : int64;  (** always >= 0 (monotonic clock) *)
  depth : int;  (** 0 for roots; parent.depth + 1 otherwise *)
  parent : string option;  (** name of the enclosing open span, if any *)
  args : (string * string) list;
      (** user args, always prefixed with [("domain", <id>)] — the
          domain the span ran on *)
}

type counter_sample = {
  c_name : string;
  c_tid : int;
  c_ts_ns : int64;
  c_values : (string * float) list;
}
(** A point-in-time multi-value sample, exported as a Chrome "C"
    (counter) event — used by the executor for periodic heap/cache
    snapshots during a replay. *)

val with_ : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] times [f ()] under a span called [name].  The span
    is recorded even when [f] raises (the exception is re-raised).
    When collection is off this is exactly [f ()]. *)

val counter : ?tid:int -> string -> (string * float) list -> unit
(** Record a counter sample at the current time.  No-op when off. *)

val completed : unit -> completed list
(** All closed spans, in completion order (children before parents). *)

val samples : unit -> counter_sample list
(** All counter samples, oldest first. *)

val open_count : unit -> int
(** Spans currently open across all threads (for invariant tests). *)

val reset : unit -> unit
(** Drop every recorded span and sample; open-span stacks are cleared
    too, so only call between (not inside) instrumented regions. *)
