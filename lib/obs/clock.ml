(* The raw source is bechamel's monotonic clock (CLOCK_MONOTONIC /
   mach_absolute_time), which the OS promises never steps backwards.
   Span durations and time-series sample ordering additionally rely on
   readings being non-decreasing *across domains*, and a clock source
   swap (or a platform where the promise is weaker, e.g. per-CPU TSC
   skew on old kernels) must not silently produce negative durations
   or out-of-order telemetry rows — so every reading is clamped
   against a process-wide high-water mark.  The CAS loop is contention
   -free in practice: readings are rare (span open/close, recorder
   ticks) next to the event loops they instrument. *)

let high_water = Atomic.make 0L

let now_ns () =
  let t = Monotonic_clock.now () in
  let rec clamp () =
    let seen = Atomic.get high_water in
    if Int64.compare t seen >= 0 then
      if Atomic.compare_and_set high_water seen t then t else clamp ()
    else seen
  in
  clamp ()

let us_of_ns ns = Int64.to_float ns /. 1e3
let ms_of_ns ns = Int64.to_float ns /. 1e6
