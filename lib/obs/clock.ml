let now_ns () = Monotonic_clock.now ()
let us_of_ns ns = Int64.to_float ns /. 1e3
let ms_of_ns ns = Int64.to_float ns /. 1e6
