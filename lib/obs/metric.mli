(** Process-wide metrics registry: named counters, gauges and
    histograms with typed handles.

    Handles are registered (or looked up) by name — asking for the same
    name twice returns the same underlying cell, so independent call
    sites accumulate into one metric.  Registration takes a lock;
    updates through a handle are atomic operations on the handle's own
    cell (histograms take a tiny per-handle mutex) and check only the
    global {!Control} flag first, so instrumenting a hot loop costs one
    branch when collection is off and emission is safe from concurrent
    pool domains when it is on. *)

type counter
(** Monotonically-increasing integer (events replayed, cache misses,
    prealloc hits, ...). *)

type gauge
(** Last-written float value (heap live bytes, events/sec, ...). *)

type histogram
(** Fixed-range bucketed distribution built on
    {!Prefix_util.Stats.histogram}; out-of-range samples land in its
    underflow/overflow counters rather than being clamped. *)

val counter : string -> counter
val gauge : string -> gauge

val histogram : ?lo:float -> ?hi:float -> ?buckets:int -> string -> histogram
(** Defaults: [lo = 0.], [hi = 4096.], [buckets = 32].  The range and
    bucket count of an already-registered name win over the arguments. *)

val add : counter -> int -> unit
val incr : counter -> unit
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the maximum of the old and new value — high-water marks
    (e.g. heap peak bytes across several replays). *)

val observe : histogram -> float -> unit
(** Feeds both the fixed-range buckets and the histogram's quantile
    {!Sketch} (p50/p95/p99 without per-sample storage). *)

val sketch : histogram -> Sketch.t
(** The histogram's attached quantile sketch (live handle, not a
    copy). *)

val quantile_levels : float list
(** Quantiles reported in snapshots and exporters: 0.5, 0.95, 0.99. *)

(** {1 Snapshots} *)

type hist_view = {
  h_lo : float;
  h_width : float;
  h_counts : int array;
  h_total : int;
  h_underflow : int;
  h_overflow : int;
  h_sum : float;  (** sum of all samples, in range or not *)
  h_quantiles : (float * float) list;
      (** [(q, estimate)] at {!quantile_levels}; empty when no samples *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}
(** Each section in registration order. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Forget every registration.  Handles created before the reset keep
    working but no longer appear in snapshots; re-acquire handles by
    name after a reset. *)
