(** Mergeable fixed-size quantile sketch.

    A uniform-weight merging digest: incoming samples accumulate in a
    small buffer and are periodically compressed into at most
    [capacity] weighted centroids, kept sorted by mean.  Memory is
    O([capacity]) regardless of how many samples are added, so every
    histogram can carry one without ever storing samples — the
    substrate for p50/p95/p99 in the telemetry exporters.

    Accuracy: a query answered from the compressed centroids is off by
    at most one centroid's weight in {e rank}.  Compression caps each
    centroid at [2n / capacity] samples, so the worst-case rank error
    after [add]ing [n] samples is [2n / capacity + 1] — about 3% of
    the population at the default capacity.  {!rank_error_bound}
    exposes the current bound; property tests assert it.

    All operations are domain-safe (each sketch carries its own
    mutex), matching the metrics registry's concurrency contract. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the maximum number of retained centroids (default
    64, minimum 8).  Raises [Invalid_argument] on [capacity < 1]. *)

val capacity : t -> int

val add : t -> float -> unit
(** O(1) amortized; NaN samples are dropped (counted nowhere), so a
    poisoned input cannot destroy the digest's ordering. *)

val count : t -> int
(** Number of (non-NaN) samples added since creation/reset. *)

val min_value : t -> float
(** Smallest sample seen; [nan] when empty. *)

val max_value : t -> float
(** Largest sample seen; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: estimated value at rank
    [q * (count - 1)], linear interpolation between centroid midpoints
    (and toward the exact [min]/[max] beyond the first/last midpoint),
    clamped to the exact [min]/[max].  [q = 0.] and [q = 1.] return
    the exact extrema; while [count <= capacity] every sample is
    retained as a singleton centroid, so all quantiles are exact.
    [nan] when the sketch is empty; raises [Invalid_argument] when [q]
    is outside [0, 1] or NaN. *)

val quantiles : t -> float list -> (float * float) list
(** [(q, quantile t q)] for each requested [q], in one lock. *)

val rank_error_bound : t -> int
(** Worst-case rank error of {!quantile} right now:
    [2 * count / capacity + 1]. *)

val merge : t -> t -> t
(** A fresh sketch summarizing the union of both inputs (inputs are
    unchanged).  The result has the larger of the two capacities; the
    error bound then holds for the combined count. *)

val reset : t -> unit
