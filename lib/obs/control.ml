let on = ref false
let set b = on := b
let is_on () = !on
