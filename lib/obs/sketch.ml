(* Uniform-weight merging digest.

   Invariants (outside of [compress], under the mutex):
   - centroids [0 .. n_centroids) are sorted by mean;
   - every centroid's weight is at most [weight_limit total] of the
     total weight at the time it was formed — re-established against
     the current total on every compression, which only tightens as
     the count grows;
   - the buffer holds at most [capacity] raw samples.

   Rank-error argument: a raw sample always sits inside the centroid
   it was merged into, and centroid means are ordered, so the true
   rank of any value interpolated between two adjacent centroid
   midpoints differs from the estimated rank by less than the larger
   of the two centroid weights <= 2n/capacity + 1. *)

type t = {
  mu : Mutex.t;
  cap : int;
  (* compressed summary, sorted by mean *)
  mutable means : float array;
  mutable weights : int array;
  mutable n_centroids : int;
  (* raw-sample staging buffer *)
  buf : float array;
  mutable n_buf : int;
  mutable total : int;
  mutable lo : float;
  mutable hi : float;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Sketch.create: capacity < 1";
  let cap = max 8 capacity in
  { mu = Mutex.create ();
    cap;
    means = Array.make (2 * cap) 0.;
    weights = Array.make (2 * cap) 0;
    n_centroids = 0;
    buf = Array.make cap 0.;
    n_buf = 0;
    total = 0;
    lo = nan;
    hi = nan }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Maximum centroid weight for [total] samples: ceil(2 total / cap),
   at least 1.  While [total <= cap] the limit is pinned at 1: the
   centroid arrays hold [2 * cap] entries, so every sample can stay a
   singleton and small-count quantiles are exact.  The unpinned ceil
   jumps to 2 as soon as [total > cap / 2], coalescing neighbours it
   had room to keep — cap 8 with samples [0;0;10;10;10;10;10] answered
   q=1/6 with 2.5 instead of 0. *)
let weight_limit t total =
  if total <= t.cap then 1 else max 1 ((2 * total + t.cap - 1) / t.cap)

(* Merge the sorted centroids with the (sorted) staged samples, then
   greedily coalesce adjacent entries while staying under the weight
   limit.  Writes the result back into [t].  Called with the lock
   held. *)
let compress t =
  if t.n_buf > 0 || t.n_centroids > t.cap then begin
    let staged = Array.sub t.buf 0 t.n_buf in
    Array.sort compare staged;
    let n_in = t.n_centroids + Array.length staged in
    let ms = Array.make (max 1 n_in) 0. and ws = Array.make (max 1 n_in) 0 in
    (* two-way merge by mean *)
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < t.n_centroids || !j < Array.length staged do
      let take_centroid =
        !j >= Array.length staged
        || (!i < t.n_centroids && t.means.(!i) <= staged.(!j))
      in
      if take_centroid then begin
        ms.(!k) <- t.means.(!i);
        ws.(!k) <- t.weights.(!i);
        incr i
      end
      else begin
        ms.(!k) <- staged.(!j);
        ws.(!k) <- 1;
        incr j
      end;
      incr k
    done;
    (* greedy coalesce under the weight limit *)
    let limit = weight_limit t t.total in
    let out = ref (-1) in
    for x = 0 to n_in - 1 do
      if !out >= 0 && t.weights.(!out) + ws.(x) <= limit then begin
        let w = t.weights.(!out) + ws.(x) in
        t.means.(!out) <-
          ((t.means.(!out) *. float_of_int t.weights.(!out))
           +. (ms.(x) *. float_of_int ws.(x)))
          /. float_of_int w;
        t.weights.(!out) <- w
      end
      else begin
        incr out;
        t.means.(!out) <- ms.(x);
        t.weights.(!out) <- ws.(x)
      end
    done;
    t.n_centroids <- !out + 1;
    t.n_buf <- 0
  end

let add t x =
  if not (Float.is_nan x) then
    locked t (fun () ->
        t.total <- t.total + 1;
        if t.total = 1 then begin
          t.lo <- x;
          t.hi <- x
        end
        else begin
          if x < t.lo then t.lo <- x;
          if x > t.hi then t.hi <- x
        end;
        t.buf.(t.n_buf) <- x;
        t.n_buf <- t.n_buf + 1;
        if t.n_buf >= Array.length t.buf then compress t)

let count t = locked t (fun () -> t.total)
let min_value t = locked t (fun () -> t.lo)
let max_value t = locked t (fun () -> t.hi)
let rank_error_bound t = locked t (fun () -> (2 * t.total / t.cap) + 1)

(* Value at target rank [r] (0-based, in [0, total-1]): walk cumulative
   weights, interpolating between adjacent centroid midpoints.  Called
   with the lock held and the buffer flushed. *)
let quantile_locked t q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.total = 0 then nan
  else if q = 0. then t.lo
  else if q = 1. then t.hi
  else begin
    compress t;
    let r = q *. float_of_int (t.total - 1) in
    (* midpoint rank of centroid i = cum_before + (w - 1) / 2.  Below
       the first midpoint we interpolate from the exact minimum (rank
       0) and above the last from the exact maximum (rank total-1),
       instead of answering flat means — the extrema are tracked
       exactly, so the tails should approach them. *)
    let rec find i cum prev_mid prev_mean =
      if i >= t.n_centroids then begin
        let last = float_of_int (t.total - 1) in
        if last <= prev_mid then prev_mean
        else
          prev_mean
          +. ((r -. prev_mid) /. (last -. prev_mid) *. (t.hi -. prev_mean))
      end
      else
        let w = float_of_int t.weights.(i) in
        let mid = float_of_int cum +. ((w -. 1.) /. 2.) in
        if r <= mid then
          if mid <= prev_mid then t.means.(i)
          else
            let frac = (r -. prev_mid) /. (mid -. prev_mid) in
            prev_mean +. (frac *. (t.means.(i) -. prev_mean))
        else find (i + 1) (cum + t.weights.(i)) mid t.means.(i)
    in
    let v = find 0 0 0. t.lo in
    let v = if Float.is_nan v then t.hi else v in
    Float.max t.lo (Float.min t.hi v)
  end

let quantile t q = locked t (fun () -> quantile_locked t q)
let quantiles t qs = locked t (fun () -> List.map (fun q -> (q, quantile_locked t q)) qs)

let merge a b =
  (* O(capacity): splice both compressed summaries together (a sorted
     two-way merge of weighted centroids) and re-compress against the
     combined total.  Exact extrema survive even though centroid means
     are interior points. *)
  let snap s =
    locked s (fun () ->
        compress s;
        ( Array.sub s.means 0 s.n_centroids,
          Array.sub s.weights 0 s.n_centroids,
          s.total,
          s.lo,
          s.hi ))
  in
  let ma, wa, ta, lo_a, hi_a = snap a in
  let mb, wb, tb, lo_b, hi_b = snap b in
  let dst = create ~capacity:(max a.cap b.cap) () in
  let na = Array.length ma and nb = Array.length mb in
  if na + nb > Array.length dst.means then begin
    dst.means <- Array.make (na + nb) 0.;
    dst.weights <- Array.make (na + nb) 0
  end;
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na || !j < nb do
    let take_a = !j >= nb || (!i < na && ma.(!i) <= mb.(!j)) in
    if take_a then begin
      dst.means.(!k) <- ma.(!i);
      dst.weights.(!k) <- wa.(!i);
      incr i
    end
    else begin
      dst.means.(!k) <- mb.(!j);
      dst.weights.(!k) <- wb.(!j);
      incr j
    end;
    incr k
  done;
  dst.n_centroids <- !k;
  dst.total <- ta + tb;
  let nan_min x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.min x y in
  let nan_max x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.max x y in
  dst.lo <- nan_min lo_a lo_b;
  dst.hi <- nan_max hi_a hi_b;
  compress dst;
  dst

let reset t =
  locked t (fun () ->
      t.n_centroids <- 0;
      t.n_buf <- 0;
      t.total <- 0;
      t.lo <- nan;
      t.hi <- nan)
