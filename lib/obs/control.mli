(** Global observability switch.

    Everything in [Prefix_obs] is off by default: spans run their body
    directly, metric handles ignore updates, and nothing accumulates in
    memory.  The check is a single [bool ref] read, so instrumented hot
    paths cost nothing measurable when collection is disabled (the
    "zero-cost disabled mode" contract that {!Span.with_} and
    {!Metric} rely on). *)

val set : bool -> unit
(** Enable or disable collection globally.  Spans that are already open
    when the flag flips keep the state they were opened under. *)

val is_on : unit -> bool
