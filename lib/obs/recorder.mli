(** Continuous-telemetry flight recorder.

    One process-wide recorder periodically snapshots the metrics
    registry ({!Metric}) into a bounded {!Timeseries}: every counter
    becomes a cumulative column, every gauge an instantaneous column,
    and every histogram contributes [name.p50]/[name.p95]/[name.p99]
    (from its quantile {!Sketch}) plus [name.count].  Memory is fixed:
    the ring coarsens on overflow, so an arbitrarily long replay keeps
    a full-span timeline in O(capacity) space.

    Sampling cadence is driven by the instrumented code, not a thread:
    the replay executor calls {!tick} every [interval_events] events
    (aligned with global event indices, so streamed and materialized
    runs record identical event-derived values), and coarse-grained
    call sites (segment boundaries, pool tasks, campaign runs) call
    {!poll}, which samples only when the wall-clock fallback interval
    has elapsed — so telemetry keeps flowing even when no replay is
    making event progress.

    Each recorded sample first refreshes the OCaml-runtime gauges
    [gc.minor_collections], [gc.major_collections] and [gc.major_words]
    (from [Gc.quick_stat], so sampling never forces collector work) —
    allocation-pressure context next to the replay's own counters, at
    zero cost between ticks.

    When the recorder is disabled (the default), every entry point is
    one atomic load; instrumented hot loops pay nothing. *)

type sample = {
  s_ts_ns : int64;
  s_ev : int;  (** global event index of the tick (0 outside replays) *)
  s_label : string;
  s_values : (string * float) list;  (** column name -> value; [nan] = absent *)
}

val configure :
  ?capacity:int ->
  ?interval_events:int ->
  ?wall_interval_ns:int64 ->
  ?on_sample:(sample -> unit) ->
  unit ->
  unit
(** Start (or restart) recording with a fresh, empty timeline.
    Defaults: capacity 512 rows, [interval_events] 65536,
    [wall_interval_ns] 1s.  [on_sample] is invoked after each recorded
    sample (outside the recorder lock — it may read {!timeseries} but
    must not call {!tick}/{!poll} reentrantly); it drives the
    [prefix top] live dashboard.  Raises [Invalid_argument] when
    [interval_events <= 0] or [wall_interval_ns <= 0L]. *)

val enabled : unit -> bool
val disable : unit -> unit
(** Stop sampling.  The recorded timeline stays readable (exporters
    run after the instrumented command finishes). *)

val interval_events : unit -> int
(** Configured event cadence (65536 when never configured). *)

val tick : ?label:string -> ?events:int -> unit -> unit
(** Record one sample now (no-op when disabled).  [events] defaults to
    the previous sample's event index. *)

val poll : ?label:string -> ?events:int -> unit -> unit
(** Record a sample only if the wall-clock fallback interval has
    elapsed since the last one (no-op when disabled). *)

val timeseries : unit -> Timeseries.t option
(** The live backing store — [None] before the first {!configure}.
    Not synchronized: read it only when no instrumented code is
    running (i.e. after the command finished or from [on_sample]). *)

val clear : unit -> unit
(** Drop recorded rows, keeping configuration and schema. *)
