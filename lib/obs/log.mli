(** Structured logging: one [Logs.Src] per subsystem.

    Nothing prints until {!setup} installs a reporter — the library
    default is [Logs.nop_reporter], so instrumented code is silent (and
    allocation-free on the message paths, since [Logs] only forces the
    message closure when the level passes). *)

val pipeline : Logs.src
(** "prefix.pipeline" — planning stages (lib/core). *)

val executor : Logs.src
(** "prefix.executor" — trace replay (lib/runtime). *)

val harness : Logs.src
(** "prefix.harness" — experiment orchestration (lib/experiments). *)

val cli : Logs.src
(** "prefix.cli" — the command-line front end. *)

val setup : level:Logs.level option -> unit -> unit
(** Install a stderr reporter tagged with the source name and set the
    level on every source.  [level = None] silences everything. *)
