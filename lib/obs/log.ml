let pipeline = Logs.Src.create "prefix.pipeline" ~doc:"PreFix planning pipeline"
let executor = Logs.Src.create "prefix.executor" ~doc:"Trace replay executor"
let harness = Logs.Src.create "prefix.harness" ~doc:"Experiment harness"
let cli = Logs.Src.create "prefix.cli" ~doc:"Command-line front end"

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf (fun ?header:_ ?tags:_ fmt ->
        Format.kfprintf k Format.err_formatter
          ("[%s] %s: " ^^ fmt ^^ "@.")
          (Logs.level_to_string (Some level))
          (Logs.Src.name src))
  in
  { Logs.report }

let setup ~level () =
  Logs.set_reporter (reporter ());
  Logs.set_level ~all:true level
