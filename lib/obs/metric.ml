module Stats = Prefix_util.Stats

type counter = { mutable count : int }
type gauge = { mutable value : float }
type histogram = { hist : Stats.histogram }

(* Registration is rare (once per metric name per process); a single
   mutex plus name->handle tables keeps it thread-safe.  Updates bypass
   the lock entirely: each handle owns its cell and int/float stores
   are atomic in the OCaml runtime. *)
let mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* Registration order, newest first, for stable reports. *)
let c_order : string list ref = ref []
let g_order : string list ref = ref []
let h_order : string list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let register tbl order name create =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some h -> h
      | None ->
        let h = create () in
        Hashtbl.replace tbl name h;
        order := name :: !order;
        h)

let counter name = register counters c_order name (fun () -> { count = 0 })
let gauge name = register gauges g_order name (fun () -> { value = 0. })

let histogram ?(lo = 0.) ?(hi = 4096.) ?(buckets = 32) name =
  register histograms h_order name (fun () ->
      { hist = Stats.histogram ~lo ~hi ~buckets })

let add c n = if Control.is_on () then c.count <- c.count + n
let incr c = add c 1
let set g v = if Control.is_on () then g.value <- v
let set_max g v = if Control.is_on () && v > g.value then g.value <- v
let observe h x = if Control.is_on () then Stats.hist_add h.hist x

type hist_view = {
  h_lo : float;
  h_width : float;
  h_counts : int array;
  h_total : int;
  h_underflow : int;
  h_overflow : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let snapshot () =
  locked (fun () ->
      let section order tbl view =
        (* [order] is newest-first; rev_map restores registration order. *)
        List.rev_map (fun name -> (name, view (Hashtbl.find tbl name))) !order
      in
      { counters = section c_order counters (fun c -> c.count);
        gauges = section g_order gauges (fun g -> g.value);
        histograms =
          section h_order histograms (fun { hist } ->
              { h_lo = Stats.hist_lo hist;
                h_width = Stats.hist_width hist;
                h_counts = Stats.hist_counts hist;
                h_total = Stats.hist_total hist;
                h_underflow = Stats.hist_underflow hist;
                h_overflow = Stats.hist_overflow hist }) })

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms;
      c_order := [];
      g_order := [];
      h_order := [])
