module Stats = Prefix_util.Stats

type counter = { count : int Atomic.t }
type gauge = { value : float Atomic.t }

(* Every histogram also feeds a fixed-size quantile sketch, so
   exporters can report p50/p95/p99 without any per-sample storage.
   The sketch carries its own lock (it is independently domain-safe);
   [hmu] still guards the bucket read-modify-write. *)
type histogram = { hist : Stats.histogram; sketch : Sketch.t; hmu : Mutex.t }

let quantile_levels = [ 0.5; 0.95; 0.99 ]

(* Registration is rare (once per metric name per process); a single
   mutex plus name->handle tables keeps it thread-safe.  Updates bypass
   the registry lock: counters and gauges are atomic cells (safe to
   bump from concurrent pool domains), and each histogram carries its
   own small mutex because bucket increments are read-modify-write on
   several fields at once. *)
let mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* Registration order, newest first, for stable reports. *)
let c_order : string list ref = ref []
let g_order : string list ref = ref []
let h_order : string list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let register tbl order name create =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some h -> h
      | None ->
        let h = create () in
        Hashtbl.replace tbl name h;
        order := name :: !order;
        h)

let counter name = register counters c_order name (fun () -> { count = Atomic.make 0 })
let gauge name = register gauges g_order name (fun () -> { value = Atomic.make 0. })

let histogram ?(lo = 0.) ?(hi = 4096.) ?(buckets = 32) name =
  register histograms h_order name (fun () ->
      { hist = Stats.histogram ~lo ~hi ~buckets;
        sketch = Sketch.create ();
        hmu = Mutex.create () })

let sketch h = h.sketch

let add c n = if Control.is_on () then ignore (Atomic.fetch_and_add c.count n)
let incr c = add c 1
let set g v = if Control.is_on () then Atomic.set g.value v

let rec set_max g v =
  if Control.is_on () then begin
    let cur = Atomic.get g.value in
    if v > cur && not (Atomic.compare_and_set g.value cur v) then set_max g v
  end

let observe h x =
  if Control.is_on () then begin
    Mutex.lock h.hmu;
    Stats.hist_add h.hist x;
    Mutex.unlock h.hmu;
    Sketch.add h.sketch x
  end

type hist_view = {
  h_lo : float;
  h_width : float;
  h_counts : int array;
  h_total : int;
  h_underflow : int;
  h_overflow : int;
  h_sum : float;
  h_quantiles : (float * float) list;
      (* (q, estimate) at [quantile_levels]; empty when no samples *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let snapshot () =
  locked (fun () ->
      let section order tbl view =
        (* [order] is newest-first; rev_map restores registration order. *)
        List.rev_map (fun name -> (name, view (Hashtbl.find tbl name))) !order
      in
      { counters = section c_order counters (fun c -> Atomic.get c.count);
        gauges = section g_order gauges (fun g -> Atomic.get g.value);
        histograms =
          section h_order histograms (fun { hist; sketch; hmu } ->
              Mutex.lock hmu;
              let v =
                { h_lo = Stats.hist_lo hist;
                  h_width = Stats.hist_width hist;
                  h_counts = Stats.hist_counts hist;
                  h_total = Stats.hist_total hist;
                  h_underflow = Stats.hist_underflow hist;
                  h_overflow = Stats.hist_overflow hist;
                  h_sum = Stats.hist_sum hist;
                  h_quantiles = [] }
              in
              Mutex.unlock hmu;
              (* Quantiles come from the sketch, outside [hmu]: the
                 sketch has its own lock and the two views may lag each
                 other by at most the samples in flight right now. *)
              let h_quantiles =
                if Sketch.count sketch = 0 then []
                else Sketch.quantiles sketch quantile_levels
              in
              { v with h_quantiles }) })

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms;
      c_order := [];
      g_order := [];
      h_order := [])
