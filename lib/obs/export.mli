(** Renderers over the {!Span} sink and {!Metric} registry.

    Formats:
    - {!report}: a flat text report (span timing table + metrics), for
      terminals;
    - {!json}: a structured dump of the same data;
    - {!chrome_trace}: Chrome trace-event format, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} —
      includes the flight recorder's series as counter tracks;
    - {!openmetrics}: Prometheus/OpenMetrics text exposition of the
      current registry (with sketch-backed quantile summaries);
    - {!timeline_csv} / {!timeline_json}: dumps of the {!Recorder}
      flight-recorder timeline. *)

val span_report : unit -> string
(** Per-span timing table: one row per (cat, name), with call count,
    total/mean/max wall time, aggregated over every recorded span. *)

val metrics_report : unit -> string
(** Counters, gauges and histograms from the current
    {!Metric.snapshot}; histograms show total/underflow/overflow and a
    sparkline of the bucket mass. *)

val report : unit -> string
(** [span_report] followed by [metrics_report]. *)

val json : unit -> string
(** The raw spans, counter samples and metrics snapshot as one JSON
    object (keys ["spans"], ["samples"], ["counters"], ["gauges"],
    ["histograms"]). *)

val chrome_trace : unit -> string
(** Chrome trace-event JSON: every completed span becomes a complete
    ("X") event with microsecond [ts]/[dur], every {!Span.counter}
    sample a counter ("C") event, plus process-name metadata.  The
    object form ([{"traceEvents": [...]}]) is used so Perfetto accepts
    the file as-is. *)

val write_chrome_trace : string -> unit
(** Write {!chrome_trace} to a file path. *)

val openmetrics : unit -> string
(** OpenMetrics / Prometheus text exposition of the current
    {!Metric.snapshot}: counters as [name_total], gauges as-is, and
    histograms as summaries — [name{quantile="0.5"}] … lines backed by
    the mergeable quantile {!Sketch}, plus [name_sum]/[name_count].
    Metric names are sanitized to [[a-zA-Z0-9_:]]; the output ends with
    the mandatory [# EOF] terminator. *)

val timeline_csv : unit -> string
(** The {!Recorder} flight-recorder timeline as CSV: header
    [t_ms,events,label,<column …>], one row per sample (oldest first),
    timestamps relative to the first sample, [nan] cells left empty.
    Empty (header-only) when the recorder never ran. *)

val timeline_json : unit -> string
(** The {!Recorder} timeline as one JSON object: ["columns"] (name +
    kind ["cum"]/["inst"]), ["coarsenings"], and ["rows"] of
    [{t_ms, events, label, values}] with [nan] rendered as [null]. *)
