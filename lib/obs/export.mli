(** Renderers over the {!Span} sink and {!Metric} registry.

    Three formats:
    - {!report}: a flat text report (span timing table + metrics), for
      terminals;
    - {!json}: a structured dump of the same data;
    - {!chrome_trace}: Chrome trace-event format, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val span_report : unit -> string
(** Per-span timing table: one row per (cat, name), with call count,
    total/mean/max wall time, aggregated over every recorded span. *)

val metrics_report : unit -> string
(** Counters, gauges and histograms from the current
    {!Metric.snapshot}; histograms show total/underflow/overflow and a
    sparkline of the bucket mass. *)

val report : unit -> string
(** [span_report] followed by [metrics_report]. *)

val json : unit -> string
(** The raw spans, counter samples and metrics snapshot as one JSON
    object (keys ["spans"], ["samples"], ["counters"], ["gauges"],
    ["histograms"]). *)

val chrome_trace : unit -> string
(** Chrome trace-event JSON: every completed span becomes a complete
    ("X") event with microsecond [ts]/[dur], every {!Span.counter}
    sample a counter ("C") event, plus process-name metadata.  The
    object form ([{"traceEvents": [...]}]) is used so Perfetto accepts
    the file as-is. *)

val write_chrome_trace : string -> unit
(** Write {!chrome_trace} to a file path. *)
