type sample = {
  s_ts_ns : int64;
  s_ev : int;
  s_label : string;
  s_values : (string * float) list;
}

type state = {
  ts : Timeseries.t;
  interval : int;
  wall_ns : int64;
  on_sample : (sample -> unit) option;
  mutable last_tick_ns : int64;
  mutable last_ev : int;
}

let default_interval = 65536

(* [enabled_flag] is the only thing hot paths look at; everything else
   is guarded by [mu].  The state outlives [disable] so exporters can
   read the timeline after the instrumented command finishes. *)
let enabled_flag = Atomic.make false
let mu = Mutex.create ()
let state : state option ref = ref None

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let configure ?(capacity = 512) ?(interval_events = default_interval)
    ?(wall_interval_ns = 1_000_000_000L) ?on_sample () =
  if interval_events <= 0 then
    invalid_arg "Recorder.configure: interval_events <= 0";
  if Int64.compare wall_interval_ns 0L <= 0 then
    invalid_arg "Recorder.configure: wall_interval_ns <= 0";
  locked (fun () ->
      state :=
        Some
          { ts = Timeseries.create ~capacity ();
            interval = interval_events;
            wall_ns = wall_interval_ns;
            on_sample;
            last_tick_ns = 0L;
            last_ev = 0 });
  Atomic.set enabled_flag true

let enabled () = Atomic.get enabled_flag
let disable () = Atomic.set enabled_flag false

let interval_events () =
  locked (fun () ->
      match !state with Some s -> s.interval | None -> default_interval)

let timeseries () = locked (fun () -> Option.map (fun s -> s.ts) !state)

let clear () =
  locked (fun () ->
      match !state with
      | None -> ()
      | Some s ->
        Timeseries.clear s.ts;
        s.last_tick_ns <- 0L;
        s.last_ev <- 0)

(* Turn the current registry contents into one timeline row.  Columns
   are created on first sight, so metrics registered mid-run simply
   appear as new columns (older rows read [nan] for them). *)
let record s ~now ~label ~events =
  (* Refresh the GC gauges first so every row carries the collector's
     state as of this tick.  Handles are re-acquired per tick (not
     cached at module load) so the gauges survive a Metric.reset. *)
  let gc = Gc.quick_stat () in
  Metric.set (Metric.gauge "gc.minor_collections") (float_of_int gc.Gc.minor_collections);
  Metric.set (Metric.gauge "gc.major_collections") (float_of_int gc.Gc.major_collections);
  Metric.set (Metric.gauge "gc.major_words") gc.Gc.major_words;
  let snap = Metric.snapshot () in
  let cols = ref [] in
  let put name kind v =
    let i = Timeseries.add_column s.ts ~name kind in
    cols := (i, name, v) :: !cols
  in
  List.iter (fun (name, v) -> put name Timeseries.Cum (float_of_int v)) snap.Metric.counters;
  List.iter (fun (name, v) -> put name Timeseries.Inst v) snap.Metric.gauges;
  List.iter
    (fun (name, (h : Metric.hist_view)) ->
      put (name ^ ".count") Timeseries.Cum (float_of_int h.h_total);
      List.iter
        (fun (q, est) ->
          put (Printf.sprintf "%s.p%g" name (100. *. q)) Timeseries.Inst est)
        h.h_quantiles)
    snap.Metric.histograms;
  let width = Array.length (Timeseries.columns s.ts) in
  let values = Array.make width nan in
  List.iter (fun (i, _, v) -> values.(i) <- v) !cols;
  Timeseries.append s.ts ~ts_ns:now ~ev:events ~label values;
  s.last_tick_ns <- now;
  s.last_ev <- events;
  match s.on_sample with
  | None -> None
  | Some f ->
    Some
      ( f,
        { s_ts_ns = now;
          s_ev = events;
          s_label = label;
          s_values = List.rev_map (fun (_, name, v) -> (name, v)) !cols } )

let run_callback = function None -> () | Some (f, sample) -> f sample

let tick ?(label = "") ?events () =
  if Atomic.get enabled_flag then
    run_callback
      (locked (fun () ->
           match !state with
           | None -> None
           | Some s ->
             let now = Clock.now_ns () in
             let events = match events with Some e -> e | None -> s.last_ev in
             record s ~now ~label ~events))

let poll ?(label = "") ?events () =
  if Atomic.get enabled_flag then
    run_callback
      (locked (fun () ->
           match !state with
           | None -> None
           | Some s ->
             let now = Clock.now_ns () in
             if Int64.compare (Int64.sub now s.last_tick_ns) s.wall_ns >= 0 then begin
               let events = match events with Some e -> e | None -> s.last_ev in
               record s ~now ~label ~events
             end
             else None))
