type completed = {
  name : string;
  cat : string;
  tid : int;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  parent : string option;
  args : (string * string) list;
}

type counter_sample = {
  c_name : string;
  c_tid : int;
  c_ts_ns : int64;
  c_values : (string * float) list;
}

(* The sink.  One mutex guards everything: spans close at most a few
   thousand times per run, so contention is irrelevant; what matters is
   that records from concurrent replay threads interleave safely. *)
let mutex = Mutex.create ()
let spans_rev : completed list ref = ref []
let samples_rev : counter_sample list ref = ref []

(* Per-thread stack of open (name) frames, for depth/parent. *)
let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let stack_of tid =
  match Hashtbl.find_opt stacks tid with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace stacks tid s;
    s

let with_ ?(cat = "") ?(args = []) name f =
  if not (Control.is_on ()) then f ()
  else begin
    let tid = Thread.id (Thread.self ()) in
    (* Every span carries the domain it ran on, so pooled runs can be
       picked apart per domain in the Chrome trace. *)
    let args = ("domain", string_of_int (Domain.self () :> int)) :: args in
    let depth, parent =
      locked (fun () ->
          let st = stack_of tid in
          let depth = List.length !st in
          let parent = match !st with [] -> None | p :: _ -> Some p in
          st := name :: !st;
          (depth, parent))
    in
    let start = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let stop = Clock.now_ns () in
        locked (fun () ->
            let st = stack_of tid in
            (match !st with _ :: rest -> st := rest | [] -> ());
            spans_rev :=
              { name;
                cat;
                tid;
                start_ns = start;
                dur_ns = Int64.sub stop start;
                depth;
                parent;
                args }
              :: !spans_rev))
      f
  end

let counter ?tid name values =
  if Control.is_on () then begin
    let tid = match tid with Some t -> t | None -> Thread.id (Thread.self ()) in
    let ts = Clock.now_ns () in
    locked (fun () ->
        samples_rev := { c_name = name; c_tid = tid; c_ts_ns = ts; c_values = values } :: !samples_rev)
  end

let completed () = locked (fun () -> List.rev !spans_rev)
let samples () = locked (fun () -> List.rev !samples_rev)

let open_count () =
  locked (fun () -> Hashtbl.fold (fun _ st acc -> acc + List.length !st) stacks 0)

let reset () =
  locked (fun () ->
      spans_rev := [];
      samples_rev := [];
      Hashtbl.reset stacks)
