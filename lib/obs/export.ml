module Tablefmt = Prefix_util.Tablefmt

(* ---- span aggregation ---- *)

type agg = {
  mutable count : int;
  mutable total_ns : int64;
  mutable max_ns : int64;
}

let aggregate spans =
  let tbl : (string * string, agg) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Span.completed) ->
      let key = (s.cat, s.name) in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
          let a = { count = 0; total_ns = 0L; max_ns = 0L } in
          Hashtbl.replace tbl key a;
          order := key :: !order;
          a
      in
      a.count <- a.count + 1;
      a.total_ns <- Int64.add a.total_ns s.dur_ns;
      if s.dur_ns > a.max_ns then a.max_ns <- s.dur_ns)
    spans;
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order

let span_report () =
  match Span.completed () with
  | [] -> "no spans recorded (is observability enabled?)\n"
  | spans ->
    let rows =
      aggregate spans
      |> List.sort (fun (_, a) (_, b) -> compare b.total_ns a.total_ns)
    in
    let t =
      Tablefmt.create ~headers:[ "span"; "cat"; "count"; "total ms"; "mean us"; "max us" ]
    in
    List.iter
      (fun (((cat : string), name), a) ->
        Tablefmt.add_row t
          [ name;
            cat;
            string_of_int a.count;
            Printf.sprintf "%.3f" (Clock.ms_of_ns a.total_ns);
            Printf.sprintf "%.1f"
              (Clock.us_of_ns a.total_ns /. float_of_int (max 1 a.count));
            Printf.sprintf "%.1f" (Clock.us_of_ns a.max_ns) ])
      rows;
    "== span timings ==\n" ^ Tablefmt.render t

let spark counts =
  let glyphs = [| " "; "."; ":"; "-"; "="; "#" |] in
  let hi = Array.fold_left max 1 counts in
  String.concat ""
    (Array.to_list
       (Array.map
          (fun c ->
            if c = 0 then glyphs.(0)
            else glyphs.(1 + (c * (Array.length glyphs - 2) / hi)))
          counts))

let metrics_report () =
  let snap = Metric.snapshot () in
  let b = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string b "== counters ==\n";
    let t = Tablefmt.create ~headers:[ "counter"; "value" ] in
    List.iter
      (fun (name, v) -> Tablefmt.add_row t [ name; Tablefmt.fmt_int v ])
      snap.counters;
    Buffer.add_string b (Tablefmt.render t)
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string b "== gauges ==\n";
    let t = Tablefmt.create ~headers:[ "gauge"; "value" ] in
    List.iter
      (fun (name, v) -> Tablefmt.add_row t [ name; Printf.sprintf "%.1f" v ])
      snap.gauges;
    Buffer.add_string b (Tablefmt.render t)
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string b "== histograms ==\n";
    List.iter
      (fun (name, (h : Metric.hist_view)) ->
        let qs =
          String.concat ""
            (List.map
               (fun (q, est) -> Printf.sprintf " p%g=%.1f" (100. *. q) est)
               h.h_quantiles)
        in
        Buffer.add_string b
          (Printf.sprintf "%-28s [%s] n=%d underflow=%d overflow=%d%s\n" name
             (spark h.h_counts) h.h_total h.h_underflow h.h_overflow qs))
      snap.histograms
  end;
  if Buffer.length b = 0 then "no metrics recorded\n" else Buffer.contents b

let report () = span_report () ^ "\n" ^ metrics_report ()

(* ---- JSON ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""
let jnum f = Printf.sprintf "%.3f" f
let jobj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"
let jarr items = "[" ^ String.concat "," items ^ "]"

let span_json (s : Span.completed) =
  jobj
    ([ ("name", jstr s.name);
       ("cat", jstr s.cat);
       ("tid", string_of_int s.tid);
       ("start_us", jnum (Clock.us_of_ns s.start_ns));
       ("dur_us", jnum (Clock.us_of_ns s.dur_ns));
       ("depth", string_of_int s.depth) ]
    @ (match s.parent with None -> [] | Some p -> [ ("parent", jstr p) ])
    @
    match s.args with
    | [] -> []
    | args -> [ ("args", jobj (List.map (fun (k, v) -> (k, jstr v)) args)) ])

let sample_json (c : Span.counter_sample) =
  jobj
    [ ("name", jstr c.c_name);
      ("tid", string_of_int c.c_tid);
      ("ts_us", jnum (Clock.us_of_ns c.c_ts_ns));
      ("values", jobj (List.map (fun (k, v) -> (k, jnum v)) c.c_values)) ]

let json () =
  let snap = Metric.snapshot () in
  jobj
    [ ("spans", jarr (List.map span_json (Span.completed ())));
      ("samples", jarr (List.map sample_json (Span.samples ())));
      ("counters", jobj (List.map (fun (k, v) -> (k, string_of_int v)) snap.counters));
      ("gauges", jobj (List.map (fun (k, v) -> (k, jnum v)) snap.gauges));
      ( "histograms",
        jobj
          (List.map
             (fun (k, (h : Metric.hist_view)) ->
               ( k,
                 jobj
                   [ ("lo", jnum h.h_lo);
                     ("width", jnum h.h_width);
                     ("total", string_of_int h.h_total);
                     ("underflow", string_of_int h.h_underflow);
                     ("overflow", string_of_int h.h_overflow);
                     ("counts", jarr (List.map string_of_int (Array.to_list h.h_counts)))
                   ] ))
             snap.histograms) ) ]

(* ---- OpenMetrics / Prometheus text exposition ---- *)

(* Metric names here use dots (executor.llc_misses); the exposition
   format only allows [a-zA-Z0-9_:], so anything else maps to '_'. *)
let om_name s =
  String.init (String.length s) (fun i ->
      match s.[i] with
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')

let om_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

let openmetrics () =
  let snap = Metric.snapshot () in
  let b = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" n v))
    snap.counters;
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (om_float v)))
    snap.gauges;
  (* Histograms expose as summaries: the quantiles come from the
     attached sketch, so no per-sample storage backs them. *)
  List.iter
    (fun (name, (h : Metric.hist_view)) ->
      let n = om_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, est) ->
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n q (om_float est)))
        h.h_quantiles;
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (om_float h.h_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.h_total))
    snap.histograms;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ---- flight-recorder timeline dumps ---- *)

let timeline_base_ns ts =
  match Timeseries.rows ts with
  | [] -> 0L
  | r :: _ -> r.Timeseries.r_ts_ns

let timeline_csv () =
  match Recorder.timeseries () with
  | None -> "t_ms,events,label\n"
  | Some ts ->
    let cols = Timeseries.columns ts in
    let b = Buffer.create 4096 in
    Buffer.add_string b "t_ms,events,label";
    Array.iter (fun (name, _) -> Buffer.add_string b ("," ^ name)) cols;
    Buffer.add_char b '\n';
    let t0 = timeline_base_ns ts in
    List.iter
      (fun (r : Timeseries.row) ->
        Buffer.add_string b
          (Printf.sprintf "%.3f,%d,%s"
             (Clock.ms_of_ns (Int64.sub r.r_ts_ns t0))
             r.r_ev
             (String.map (fun c -> if c = ',' then ';' else c) r.r_label));
        Array.iter
          (fun v ->
            Buffer.add_char b ',';
            if not (Float.is_nan v) then Buffer.add_string b (om_float v))
          r.r_values;
        Buffer.add_char b '\n')
      (Timeseries.rows ts);
    Buffer.contents b

let timeline_json () =
  match Recorder.timeseries () with
  | None -> jobj [ ("columns", jarr []); ("rows", jarr []) ]
  | Some ts ->
    let cols = Timeseries.columns ts in
    let t0 = timeline_base_ns ts in
    jobj
      [ ( "columns",
          jarr
            (Array.to_list
               (Array.map
                  (fun (name, kind) ->
                    jobj
                      [ ("name", jstr name);
                        ( "kind",
                          jstr
                            (match kind with
                            | Timeseries.Cum -> "cum"
                            | Timeseries.Inst -> "inst") ) ])
                  cols)) );
        ("coarsenings", string_of_int (Timeseries.coarsenings ts));
        ( "rows",
          jarr
            (List.map
               (fun (r : Timeseries.row) ->
                 jobj
                   [ ("t_ms", jnum (Clock.ms_of_ns (Int64.sub r.r_ts_ns t0)));
                     ("events", string_of_int r.r_ev);
                     ("label", jstr r.r_label);
                     ( "values",
                       jarr
                         (Array.to_list
                            (Array.map
                               (fun v ->
                                 if Float.is_nan v then "null" else jnum v)
                               r.r_values)) ) ])
               (Timeseries.rows ts)) ) ]

(* ---- Chrome trace-event format ---- *)

let chrome_trace () =
  let meta =
    jobj
      [ ("name", jstr "process_name");
        ("ph", jstr "M");
        ("pid", "1");
        ("args", jobj [ ("name", jstr "prefix") ]) ]
  in
  let span_event (s : Span.completed) =
    jobj
      [ ("name", jstr s.name);
        ("cat", jstr (if s.cat = "" then "prefix" else s.cat));
        ("ph", jstr "X");
        ("ts", jnum (Clock.us_of_ns s.start_ns));
        ("dur", jnum (Clock.us_of_ns s.dur_ns));
        ("pid", "1");
        ("tid", string_of_int s.tid);
        ("args", jobj (List.map (fun (k, v) -> (k, jstr v)) s.args)) ]
  in
  let counter_event (c : Span.counter_sample) =
    jobj
      [ ("name", jstr c.c_name);
        ("ph", jstr "C");
        ("ts", jnum (Clock.us_of_ns c.c_ts_ns));
        ("pid", "1");
        ("tid", string_of_int c.c_tid);
        ("args", jobj (List.map (fun (k, v) -> (k, jnum v)) c.c_values)) ]
  in
  (* Flight-recorder rows become per-column counter tracks, so the
     Perfetto timeline shows every recorded series (events/s, live
     objects, quantiles, ...) under the replay spans.  The recorder's
     ring is bounded, so this adds at most capacity x columns events. *)
  let recorder_events =
    match Recorder.timeseries () with
    | None -> []
    | Some ts ->
      let cols = Timeseries.columns ts in
      List.concat_map
        (fun (r : Timeseries.row) ->
          List.filter_map
            (fun i ->
              let v = r.Timeseries.r_values.(i) in
              if Float.is_nan v then None
              else
                let name, _ = cols.(i) in
                Some
                  (jobj
                     [ ("name", jstr name);
                       ("ph", jstr "C");
                       ("ts", jnum (Clock.us_of_ns r.r_ts_ns));
                       ("pid", "1");
                       ("tid", "0");
                       ("args", jobj [ ("value", jnum v) ]) ]))
            (List.init (Array.length cols) Fun.id))
        (Timeseries.rows ts)
  in
  let events =
    (meta :: List.map span_event (Span.completed ()))
    @ List.map counter_event (Span.samples ())
    @ recorder_events
  in
  jobj [ ("traceEvents", jarr events); ("displayTimeUnit", jstr "ms") ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (chrome_trace ()))
