module Tablefmt = Prefix_util.Tablefmt

(* ---- span aggregation ---- *)

type agg = {
  mutable count : int;
  mutable total_ns : int64;
  mutable max_ns : int64;
}

let aggregate spans =
  let tbl : (string * string, agg) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Span.completed) ->
      let key = (s.cat, s.name) in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
          let a = { count = 0; total_ns = 0L; max_ns = 0L } in
          Hashtbl.replace tbl key a;
          order := key :: !order;
          a
      in
      a.count <- a.count + 1;
      a.total_ns <- Int64.add a.total_ns s.dur_ns;
      if s.dur_ns > a.max_ns then a.max_ns <- s.dur_ns)
    spans;
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order

let span_report () =
  match Span.completed () with
  | [] -> "no spans recorded (is observability enabled?)\n"
  | spans ->
    let rows =
      aggregate spans
      |> List.sort (fun (_, a) (_, b) -> compare b.total_ns a.total_ns)
    in
    let t =
      Tablefmt.create ~headers:[ "span"; "cat"; "count"; "total ms"; "mean us"; "max us" ]
    in
    List.iter
      (fun (((cat : string), name), a) ->
        Tablefmt.add_row t
          [ name;
            cat;
            string_of_int a.count;
            Printf.sprintf "%.3f" (Clock.ms_of_ns a.total_ns);
            Printf.sprintf "%.1f"
              (Clock.us_of_ns a.total_ns /. float_of_int (max 1 a.count));
            Printf.sprintf "%.1f" (Clock.us_of_ns a.max_ns) ])
      rows;
    "== span timings ==\n" ^ Tablefmt.render t

let spark counts =
  let glyphs = [| " "; "."; ":"; "-"; "="; "#" |] in
  let hi = Array.fold_left max 1 counts in
  String.concat ""
    (Array.to_list
       (Array.map
          (fun c ->
            if c = 0 then glyphs.(0)
            else glyphs.(1 + (c * (Array.length glyphs - 2) / hi)))
          counts))

let metrics_report () =
  let snap = Metric.snapshot () in
  let b = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string b "== counters ==\n";
    let t = Tablefmt.create ~headers:[ "counter"; "value" ] in
    List.iter
      (fun (name, v) -> Tablefmt.add_row t [ name; Tablefmt.fmt_int v ])
      snap.counters;
    Buffer.add_string b (Tablefmt.render t)
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string b "== gauges ==\n";
    let t = Tablefmt.create ~headers:[ "gauge"; "value" ] in
    List.iter
      (fun (name, v) -> Tablefmt.add_row t [ name; Printf.sprintf "%.1f" v ])
      snap.gauges;
    Buffer.add_string b (Tablefmt.render t)
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string b "== histograms ==\n";
    List.iter
      (fun (name, (h : Metric.hist_view)) ->
        Buffer.add_string b
          (Printf.sprintf "%-28s [%s] n=%d underflow=%d overflow=%d\n" name
             (spark h.h_counts) h.h_total h.h_underflow h.h_overflow))
      snap.histograms
  end;
  if Buffer.length b = 0 then "no metrics recorded\n" else Buffer.contents b

let report () = span_report () ^ "\n" ^ metrics_report ()

(* ---- JSON ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""
let jnum f = Printf.sprintf "%.3f" f
let jobj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"
let jarr items = "[" ^ String.concat "," items ^ "]"

let span_json (s : Span.completed) =
  jobj
    ([ ("name", jstr s.name);
       ("cat", jstr s.cat);
       ("tid", string_of_int s.tid);
       ("start_us", jnum (Clock.us_of_ns s.start_ns));
       ("dur_us", jnum (Clock.us_of_ns s.dur_ns));
       ("depth", string_of_int s.depth) ]
    @ (match s.parent with None -> [] | Some p -> [ ("parent", jstr p) ])
    @
    match s.args with
    | [] -> []
    | args -> [ ("args", jobj (List.map (fun (k, v) -> (k, jstr v)) args)) ])

let sample_json (c : Span.counter_sample) =
  jobj
    [ ("name", jstr c.c_name);
      ("tid", string_of_int c.c_tid);
      ("ts_us", jnum (Clock.us_of_ns c.c_ts_ns));
      ("values", jobj (List.map (fun (k, v) -> (k, jnum v)) c.c_values)) ]

let json () =
  let snap = Metric.snapshot () in
  jobj
    [ ("spans", jarr (List.map span_json (Span.completed ())));
      ("samples", jarr (List.map sample_json (Span.samples ())));
      ("counters", jobj (List.map (fun (k, v) -> (k, string_of_int v)) snap.counters));
      ("gauges", jobj (List.map (fun (k, v) -> (k, jnum v)) snap.gauges));
      ( "histograms",
        jobj
          (List.map
             (fun (k, (h : Metric.hist_view)) ->
               ( k,
                 jobj
                   [ ("lo", jnum h.h_lo);
                     ("width", jnum h.h_width);
                     ("total", string_of_int h.h_total);
                     ("underflow", string_of_int h.h_underflow);
                     ("overflow", string_of_int h.h_overflow);
                     ("counts", jarr (List.map string_of_int (Array.to_list h.h_counts)))
                   ] ))
             snap.histograms) ) ]

(* ---- Chrome trace-event format ---- *)

let chrome_trace () =
  let meta =
    jobj
      [ ("name", jstr "process_name");
        ("ph", jstr "M");
        ("pid", "1");
        ("args", jobj [ ("name", jstr "prefix") ]) ]
  in
  let span_event (s : Span.completed) =
    jobj
      [ ("name", jstr s.name);
        ("cat", jstr (if s.cat = "" then "prefix" else s.cat));
        ("ph", jstr "X");
        ("ts", jnum (Clock.us_of_ns s.start_ns));
        ("dur", jnum (Clock.us_of_ns s.dur_ns));
        ("pid", "1");
        ("tid", string_of_int s.tid);
        ("args", jobj (List.map (fun (k, v) -> (k, jstr v)) s.args)) ]
  in
  let counter_event (c : Span.counter_sample) =
    jobj
      [ ("name", jstr c.c_name);
        ("ph", jstr "C");
        ("ts", jnum (Clock.us_of_ns c.c_ts_ns));
        ("pid", "1");
        ("tid", string_of_int c.c_tid);
        ("args", jobj (List.map (fun (k, v) -> (k, jnum v)) c.c_values)) ]
  in
  let events =
    (meta :: List.map span_event (Span.completed ()))
    @ List.map counter_event (Span.samples ())
  in
  jobj [ ("traceEvents", jarr events); ("displayTimeUnit", jstr "ms") ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (chrome_trace ()))
