type addr = int

let alignment = 16

(* Free blocks ordered by (size, addr) for best-fit lookup. *)
module SzSet = Set.Make (struct
  type t = int * int (* size, addr *)

  let compare = compare
end)

type t = {
  base : addr;
  mutable top : addr; (* next fresh address *)
  mutable free_set : SzSet.t;
  free_by_addr : (addr, int) Hashtbl.t; (* addr -> size *)
  ends : (addr, addr) Hashtbl.t; (* end addr -> start addr, free blocks only *)
  allocated : (addr, int) Hashtbl.t; (* addr -> rounded size *)
  mutable live : int;
  mutable peak : int;
  mutable mallocs : int;
  mutable frees : int;
  mutable reallocs : int;
}

let create ?(base = 0x10000) () =
  { base;
    top = base;
    free_set = SzSet.empty;
    free_by_addr = Hashtbl.create 1024;
    ends = Hashtbl.create 1024;
    allocated = Hashtbl.create 1024;
    live = 0;
    peak = 0;
    mallocs = 0;
    frees = 0;
    reallocs = 0 }

let round_up size = (size + alignment - 1) / alignment * alignment

let add_free t addr size =
  t.free_set <- SzSet.add (size, addr) t.free_set;
  Hashtbl.replace t.free_by_addr addr size;
  Hashtbl.replace t.ends (addr + size) addr

let remove_free t addr size =
  t.free_set <- SzSet.remove (size, addr) t.free_set;
  Hashtbl.remove t.free_by_addr addr;
  Hashtbl.remove t.ends (addr + size)

let note_alloc t addr size =
  Hashtbl.replace t.allocated addr size;
  t.live <- t.live + size;
  if t.live > t.peak then t.peak <- t.live

let malloc t size =
  if size <= 0 then invalid_arg "Allocator.malloc: size must be positive";
  t.mallocs <- t.mallocs + 1;
  let want = round_up size in
  match SzSet.find_first_opt (fun (s, _) -> s >= want) t.free_set with
  | Some (bsize, addr) ->
    remove_free t addr bsize;
    if bsize - want >= alignment then add_free t (addr + want) (bsize - want);
    (* Remainders below one granule are absorbed into the block. *)
    let got = if bsize - want >= alignment then want else bsize in
    note_alloc t addr got;
    addr
  | None ->
    let addr = t.top in
    t.top <- t.top + want;
    note_alloc t addr want;
    addr

let free t addr =
  match Hashtbl.find_opt t.allocated addr with
  | None -> invalid_arg "Allocator.free: address not allocated"
  | Some size ->
    t.frees <- t.frees + 1;
    Hashtbl.remove t.allocated addr;
    t.live <- t.live - size;
    (* Coalesce with free left neighbour. *)
    let addr, size =
      match Hashtbl.find_opt t.ends addr with
      | Some left ->
        let lsize = Hashtbl.find t.free_by_addr left in
        remove_free t left lsize;
        (left, lsize + size)
      | None -> (addr, size)
    in
    (* Coalesce with free right neighbour. *)
    let size =
      match Hashtbl.find_opt t.free_by_addr (addr + size) with
      | Some rsize ->
        remove_free t (addr + size) rsize;
        size + rsize
      | None -> size
    in
    add_free t addr size

let block_size t addr = Hashtbl.find_opt t.allocated addr

let is_allocated t addr = Hashtbl.mem t.allocated addr

let realloc t addr size =
  if size <= 0 then invalid_arg "Allocator.realloc: size must be positive";
  match Hashtbl.find_opt t.allocated addr with
  | None -> invalid_arg "Allocator.realloc: address not allocated"
  | Some cur ->
    t.reallocs <- t.reallocs + 1;
    let want = round_up size in
    if want <= cur then addr (* shrink / fits in place *)
    else begin
      let fresh = malloc t size in
      t.mallocs <- t.mallocs - 1; (* internal call, not a user malloc *)
      free t addr;
      t.frees <- t.frees - 1;
      fresh
    end

let live_bytes t = t.live
let peak_bytes t = t.peak
let heap_extent t = t.top - t.base
let malloc_calls t = t.mallocs
let free_calls t = t.frees
let realloc_calls t = t.reallocs

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  (* Free set and free_by_addr agree. *)
  let* () =
    if SzSet.cardinal t.free_set <> Hashtbl.length t.free_by_addr then
      Error "free_set and free_by_addr disagree on cardinality"
    else Ok ()
  in
  let* () =
    SzSet.fold
      (fun (size, addr) acc ->
        let* () = acc in
        match Hashtbl.find_opt t.free_by_addr addr with
        | Some s when s = size -> Ok ()
        | _ -> Error (Printf.sprintf "free block (%d,%d) missing from addr index" addr size))
      t.free_set (Ok ())
  in
  (* Collect all blocks and check disjointness + coalescing. *)
  let blocks =
    Hashtbl.fold (fun a s acc -> (a, s, `Free) :: acc) t.free_by_addr []
    @ Hashtbl.fold (fun a s acc -> (a, s, `Alloc) :: acc) t.allocated []
  in
  let blocks = List.sort compare blocks in
  let rec check = function
    | (a1, s1, k1) :: ((a2, _, k2) :: _ as rest) ->
      if a1 + s1 > a2 then Error (Printf.sprintf "overlapping blocks at %d and %d" a1 a2)
      else if k1 = `Free && k2 = `Free && a1 + s1 = a2 then
        Error (Printf.sprintf "uncoalesced free blocks at %d and %d" a1 a2)
      else check rest
    | _ -> Ok ()
  in
  let* () = check blocks in
  let* () =
    List.fold_left
      (fun acc (a, s, _) ->
        let* () = acc in
        if a < t.base || a + s > t.top then Error (Printf.sprintf "block %d outside heap" a)
        else Ok ())
      (Ok ()) blocks
  in
  let live = Hashtbl.fold (fun _ s acc -> acc + s) t.allocated 0 in
  if live <> t.live then Error "live byte accounting drifted" else Ok ()
