(** Preallocated memory regions ("the preallocated region" of the paper).

    An arena is a contiguous block reserved from the {!Allocator} once, at
    program start, into which PreFix places hot objects at predetermined
    offsets.  The arena also carries per-slot occupancy state used by the
    free interception of Figure 5 and the recycling scheme of Figure 7. *)

type t

type slot = {
  slot_offset : int;  (** byte offset of the slot within the arena *)
  slot_size : int;  (** reserved bytes for the slot *)
}

val create : Allocator.t -> slot list -> t
(** [create alloc slots] reserves one contiguous region big enough for all
    [slots] (which must be disjoint and in-bounds of their computed span)
    and returns the arena.  Raises [Invalid_argument] on overlapping
    slots.  Reserving an empty slot list yields a zero-slot arena that
    [contains] nothing. *)

val base : t -> Allocator.addr
val size : t -> int
val num_slots : t -> int

val slot_addr : t -> int -> Allocator.addr
(** Address of slot [i]; raises [Invalid_argument] out of range. *)

val slot_size : t -> int -> int

val contains : t -> Allocator.addr -> bool
(** Whether an address falls inside the arena (the
    [ObjectAddress ∈ PreallocMemory] test of Figures 5–7). *)

val slot_of_addr : t -> Allocator.addr -> int option
(** The slot whose reserved range covers the address, if any. *)

val occupy : t -> int -> unit
(** Mark slot [i] live.  Raises [Invalid_argument] if already live —
    placement must never overwrite a live object. *)

val release : t -> int -> unit
(** Mark slot [i] free (the "Mark ObjectAddress as free" of Figure 5).
    Raises [Invalid_argument] if already free. *)

val is_free : t -> int -> bool

val live_slots : t -> int

val dispose : t -> Allocator.t -> unit
(** Return the whole region to the allocator ("freed at the end",
    Table 1).  No-op for zero-slot arenas. *)
