(** Simulated heap allocator over a virtual address space.

    This stands in for the C allocator underneath the paper's native
    binaries.  It is a classic best-fit allocator with address-ordered
    coalescing and 16-byte alignment: objects allocated back-to-back get
    adjacent addresses (allocation-order locality), freed space is reused
    (address reuse), and fragmentation behaves the way the paper's
    locality arguments assume.  Addresses are plain byte offsets into a
    virtual space, suitable for feeding straight into the cache
    simulator. *)

type t

type addr = int

val alignment : int
(** Allocation granule (16 bytes, as in glibc). *)

val create : ?base:addr -> unit -> t
(** Fresh allocator; [base] is the lowest address it will hand out
    (default 0x10000, so that 0 is never a valid object address). *)

val malloc : t -> int -> addr
(** [malloc t size] returns the address of a new block of at least
    [size] bytes.  Raises [Invalid_argument] on non-positive sizes. *)

val free : t -> addr -> unit
(** Releases a block previously returned by {!malloc}/{!realloc}.
    Raises [Invalid_argument] for addresses not currently allocated
    (double free / wild free). *)

val realloc : t -> addr -> int -> addr
(** [realloc t a size] grows or shrinks the block at [a]; returns the
    (possibly moved) address.  Shrinks and growth within the block's
    rounded size are in place. *)

val block_size : t -> addr -> int option
(** Rounded size of a currently-allocated block, or [None]. *)

val is_allocated : t -> addr -> bool

val live_bytes : t -> int
(** Bytes currently allocated (rounded sizes). *)

val peak_bytes : t -> int
(** High-water mark of {!live_bytes} over the allocator's lifetime. *)

val heap_extent : t -> int
(** Total span of address space touched so far ([top - base]); the
    footprint that the access heatmap of Figure 9 visualises. *)

val malloc_calls : t -> int
val free_calls : t -> int
val realloc_calls : t -> int

val check_invariants : t -> (unit, string) result
(** Internal consistency: free blocks are disjoint, coalesced (no two
    adjacent free blocks), and disjoint from allocated blocks.  Used by
    property tests. *)
