type slot = { slot_offset : int; slot_size : int }

type t = {
  base : Allocator.addr;
  size : int;
  slots : slot array; (* sorted by offset *)
  free : bool array; (* per-slot occupancy; true = free *)
}

let create alloc slots =
  let slots = Array.of_list slots in
  Array.sort (fun a b -> compare a.slot_offset b.slot_offset) slots;
  (* Check disjointness. *)
  Array.iteri
    (fun i s ->
      if s.slot_offset < 0 || s.slot_size <= 0 then
        invalid_arg "Arena.create: bad slot geometry";
      if i > 0 then begin
        let p = slots.(i - 1) in
        if p.slot_offset + p.slot_size > s.slot_offset then
          invalid_arg "Arena.create: overlapping slots"
      end)
    slots;
  let size =
    if Array.length slots = 0 then 0
    else
      let last = slots.(Array.length slots - 1) in
      last.slot_offset + last.slot_size
  in
  let base = if size = 0 then 0 else Allocator.malloc alloc size in
  { base; size; slots; free = Array.make (Array.length slots) true }

let base t = t.base
let size t = t.size
let num_slots t = Array.length t.slots

let check_idx t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Arena: slot index out of range"

let slot_addr t i =
  check_idx t i;
  t.base + t.slots.(i).slot_offset

let slot_size t i =
  check_idx t i;
  t.slots.(i).slot_size

let contains t addr = t.size > 0 && addr >= t.base && addr < t.base + t.size

let slot_of_addr t addr =
  if not (contains t addr) then None
  else begin
    let off = addr - t.base in
    (* Binary search for the last slot with slot_offset <= off. *)
    let lo = ref 0 and hi = ref (Array.length t.slots - 1) and found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.slots.(mid).slot_offset <= off then begin
        found := Some mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    match !found with
    | Some i when off < t.slots.(i).slot_offset + t.slots.(i).slot_size -> Some i
    | _ -> None
  end

let occupy t i =
  check_idx t i;
  if not t.free.(i) then invalid_arg "Arena.occupy: slot already live";
  t.free.(i) <- false

let release t i =
  check_idx t i;
  if t.free.(i) then invalid_arg "Arena.release: slot already free";
  t.free.(i) <- true

let is_free t i =
  check_idx t i;
  t.free.(i)

let live_slots t = Array.fold_left (fun n f -> if f then n else n + 1) 0 t.free

let dispose t alloc = if t.size > 0 then Allocator.free alloc t.base
